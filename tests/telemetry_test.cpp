#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/runtime.h"
#include "gpusim/device.h"
#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"
#include "util/cli.h"
#include "util/config.h"
#include "util/timer.h"

namespace antmoc::telemetry {
namespace {

/// Arms telemetry for one test and guarantees the next test starts clean.
class TelemetryOn {
 public:
  explicit TelemetryOn(std::size_t span_capacity = 1 << 12) {
    Config cfg;
    cfg.enabled = true;
    cfg.span_capacity = span_capacity;
    Telemetry::instance().set_config(cfg);
    Telemetry::instance().reset();
  }
  ~TelemetryOn() {
    Telemetry::instance().reset();
    Telemetry::instance().set_enabled(false);
  }
};

// ------------------------------------------------------------- Metrics ---

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry m;
  m.counter("hits").add();
  m.counter("hits").add(41);
  EXPECT_EQ(m.counter("hits").value(), 42u);
  EXPECT_EQ(m.counter("misses").value(), 0u);
}

TEST(Metrics, CounterIsThreadSafe) {
  MetricsRegistry m;
  auto& c = m.counter("contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(Metrics, GaugeKeepsLastValueAndSeries) {
  MetricsRegistry m;
  auto& g = m.gauge("k_eff");
  g.set(1.0);
  g.set(1.1);
  g.set(1.05);
  EXPECT_DOUBLE_EQ(g.value(), 1.05);
  const auto samples = g.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].second, 1.0);
  EXPECT_DOUBLE_EQ(samples[2].second, 1.05);
  // Timestamps never run backwards within a series.
  EXPECT_LE(samples[0].first, samples[1].first);
  EXPECT_LE(samples[1].first, samples[2].first);
}

TEST(Metrics, GaugeSeriesIsBoundedButLastValueIsNot) {
  MetricsRegistry m(/*gauge_capacity=*/4);
  auto& g = m.gauge("residual");
  for (int i = 0; i < 10; ++i) g.set(i);
  EXPECT_EQ(g.samples().size(), 4u);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);  // last value still tracks past the cap
}

TEST(Metrics, HistogramBucketsObservations) {
  MetricsRegistry m;
  auto& h = m.histogram("util", {0.5, 1.0});
  h.observe(0.2);   // <= 0.5
  h.observe(0.5);   // <= 0.5 (bounds are inclusive upper edges)
  h.observe(0.75);  // <= 1.0
  h.observe(2.0);   // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.45);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 1}));
}

TEST(Metrics, LabelFormatsCanonically) {
  EXPECT_EQ(label("comm.bytes_sent", "rank", 3), "comm.bytes_sent[rank=3]");
}

// --------------------------------------------------------------- Spans ---

TEST(Spans, NothingRecordedWhileDisabled) {
  Telemetry::instance().reset();
  Telemetry::instance().set_enabled(false);
  { TraceSpan span("ghost", "test"); }
  Telemetry::instance().instant("ghost-instant", "test");
  EXPECT_TRUE(Telemetry::instance().events().empty());
}

TEST(Spans, RecordsCompleteEventWithAttribution) {
  TelemetryOn scope;
  {
    TraceSpan span("solve", "solver", /*rank=*/2, /*cu=*/-1, "iteration", 7);
  }
  const auto events = Telemetry::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "solve");
  EXPECT_STREQ(events[0].category, "solver");
  EXPECT_FALSE(events[0].instant);
  EXPECT_EQ(events[0].rank, 2);
  EXPECT_STREQ(events[0].arg_name, "iteration");
  EXPECT_EQ(events[0].arg, 7);
}

TEST(Spans, StringNamesAreInternedOnce) {
  TelemetryOn scope;
  const std::string name = "kernel/transport_sweep";
  { TraceSpan a(name, "gpusim"); }
  { TraceSpan b(name, "gpusim"); }
  const auto events = Telemetry::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, events[1].name);  // same interned pointer
}

TEST(Spans, TimestampsAreMonotonicallyConsistent) {
  TelemetryOn scope;
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner", "test");
  }
  { TraceSpan later("later", "test"); }
  const auto events = Telemetry::instance().events();
  ASSERT_EQ(events.size(), 3u);
  // events() sorts by begin timestamp; every span must fit inside the
  // recorded order (begin_i <= begin_{i+1}) and have a sane duration.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  // "later" begins at or after "outer" ends.
  const auto& outer = events[0];
  const auto& later = events[2];
  EXPECT_LE(outer.ts_us + outer.dur_us, later.ts_us);
}

TEST(Spans, RingWrapsAndCountsDrops) {
  TelemetryOn scope(/*span_capacity=*/16);
  // A fresh thread gets a fresh ring sized by the active config.
  std::thread producer([] {
    for (int i = 0; i < 50; ++i) TraceSpan span("spin", "test");
  });
  producer.join();
  EXPECT_EQ(Telemetry::instance().events().size(), 16u);
  EXPECT_EQ(Telemetry::instance().dropped_events(), 50u - 16u);
}

TEST(Spans, ThreadsGetDistinctBuffers) {
  TelemetryOn scope;
  std::thread a([] { TraceSpan span("from-a", "test"); });
  a.join();
  std::thread b([] { TraceSpan span("from-b", "test"); });
  b.join();
  const auto events = Telemetry::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Spans, InstantEventsCarryPayload) {
  TelemetryOn scope;
  Telemetry::instance().instant("fault/downgrade", "fault", 1,
                                "budget_bytes", 4096);
  const auto events = Telemetry::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].arg, 4096);
}

TEST(Spans, ScopedWaitFeedsRankedCounters) {
  TelemetryOn scope;
  { ScopedWait wait("comm.wait_us", 3); }
  auto& m = metrics();
  // Both the total and the per-rank bucket exist (durations may be 0 us on
  // a fast machine, so assert on registration, not magnitude).
  const auto names = m.counter_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "comm.wait_us"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "comm.wait_us[rank=3]"),
            names.end());
}

// ------------------------------------------------------------ Exporters ---

TEST(Exporters, ChromeTraceIsValidTraceEvents) {
  TelemetryOn scope;
  { TraceSpan span("kernel/sweep", "gpusim", 0, -1, "items", 10); }
  Telemetry::instance().instant("fault/downgrade", "fault");
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel/sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"rank\":0,\"items\":10}"),
            std::string::npos);
  // Structural sanity: braces and brackets balance.
  long braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Exporters, MetricsJsonlListsEveryMetricKind) {
  TelemetryOn scope;
  auto& m = metrics();
  m.counter("comm.bytes_sent[rank=0]").add(1234);
  m.gauge("solver.residual").set(0.5);
  m.gauge("solver.residual").set(0.25);
  m.histogram("gpusim.cu_utilization").observe(0.9);
  const std::string jsonl = metrics_jsonl();
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":\"comm.bytes_sent"
                       "[rank=0]\",\"value\":1234}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"gauge\",\"name\":\"solver.residual\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"value\":0.25"), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"histogram\""), std::string::npos);
  // One JSON object per line, every line self-contained.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(jsonl[start], '{');
    EXPECT_EQ(jsonl[end - 1], '}');
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(Exporters, SummarySubsumesTimerRegistry) {
  TelemetryOn scope;
  TimerRegistry::instance().clear();
  TimerRegistry::instance().add("solver/solve", 1.5);
  { TraceSpan span("solver/iteration", "solver"); }
  metrics().counter("solver.iterations").add(3);
  const std::string text = summary();
  EXPECT_NE(text.find("solver/iteration"), std::string::npos);
  EXPECT_NE(text.find("solver.iterations"), std::string::npos);
  EXPECT_NE(text.find("stage timers"), std::string::npos);
  EXPECT_NE(text.find("solver/solve"), std::string::npos);
  TimerRegistry::instance().clear();
}

TEST(Exporters, ExportAllWritesConfiguredPaths) {
  Config cfg;
  cfg.enabled = true;
  cfg.trace_path = "telemetry_test_trace.json";
  cfg.metrics_path = "telemetry_test_metrics.jsonl";
  Telemetry::instance().set_config(cfg);
  Telemetry::instance().reset();
  { TraceSpan span("export-me", "test"); }
  metrics().counter("exported").add(1);
  EXPECT_TRUE(export_all());
  Telemetry::instance().reset();
  Telemetry::instance().set_enabled(false);

  std::ifstream trace(cfg.trace_path);
  std::ifstream jsonl(cfg.metrics_path);
  ASSERT_TRUE(trace.good());
  ASSERT_TRUE(jsonl.good());
  std::string trace_text((std::istreambuf_iterator<char>(trace)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(trace_text.find("export-me"), std::string::npos);
  std::remove(cfg.trace_path.c_str());
  std::remove(cfg.metrics_path.c_str());
}

// ---------------------------------------------------------- Configuring ---

TEST(Configure, OffByDefault) {
  antmoc::Config run_cfg = antmoc::Config::parse("tolerance: 1e-5\n");
  Telemetry::instance().configure(run_cfg);
  EXPECT_FALSE(Telemetry::enabled());
  EXPECT_FALSE(Telemetry::instance().config().enabled);
}

TEST(Configure, CliFlagEnablesWithDefaultPaths) {
  const char* argv[] = {"prog", "--telemetry"};
  const antmoc::Config run_cfg = antmoc::parse_cli(2, argv);
  Telemetry::instance().configure(run_cfg);
  const Config cfg = Telemetry::instance().config();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.trace_path, "antmoc_trace.json");
  EXPECT_EQ(cfg.metrics_path, "antmoc_metrics.jsonl");
  Telemetry::instance().set_enabled(false);
}

TEST(Configure, DottedKeysOverrideEverything) {
  antmoc::Config run_cfg = antmoc::Config::parse(
      "telemetry:\n"
      "  enabled: true\n"
      "  trace: my_trace.json\n"
      "  metrics: my_metrics.jsonl\n"
      "  span_capacity: 128\n"
      "  gauge_capacity: 16\n");
  Telemetry::instance().configure(run_cfg);
  const Config cfg = Telemetry::instance().config();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.trace_path, "my_trace.json");
  EXPECT_EQ(cfg.metrics_path, "my_metrics.jsonl");
  EXPECT_EQ(cfg.span_capacity, 128u);
  EXPECT_EQ(cfg.gauge_capacity, 16u);
  Telemetry::instance().set_enabled(false);
}

// ----------------------------------------------------------- Integration ---

TEST(Integration, DeviceLaunchRecordsKernelSpanAndCuUtilization) {
  TelemetryOn scope;
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 24, 4));
  device.launch("probe", 64, gpusim::Assignment::kRoundRobin,
                [](std::size_t) { return 10.0; });
  const auto events = Telemetry::instance().events();
  bool saw_kernel = false;
  for (const auto& ev : events)
    if (std::string(ev.name) == "kernel/probe") saw_kernel = true;
  EXPECT_TRUE(saw_kernel);

  auto& m = metrics();
  EXPECT_EQ(m.counter("gpusim.kernel.launches").value(), 1u);
  EXPECT_EQ(m.counter("gpusim.kernel.items").value(), 64u);
  // 64 equal items over 4 CUs: every CU fully busy, utilization 1.0.
  EXPECT_EQ(m.histogram("gpusim.cu_utilization").count(), 4u);
  EXPECT_EQ(m.counter("gpusim.cu_busy_cycles[cu=0]").value(), 160u);
  EXPECT_EQ(m.counter("gpusim.cu_idle_cycles[cu=0]").value(), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("gpusim.load_uniformity").value(), 1.0);
}

TEST(Integration, CommTrafficLandsInPerRankCounters) {
  TelemetryOn scope;
  comm::Runtime::run(2, [](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> payload(16, 1.0);  // 128 B
      comm.send(1, 42, payload);
    } else {
      std::vector<double> in;
      comm.recv(0, 42, in);
    }
    comm.barrier();
  });
  auto& m = metrics();
  EXPECT_EQ(m.counter("comm.bytes_sent[rank=0]").value(), 128u);
  EXPECT_EQ(m.counter("comm.bytes_recv[rank=1]").value(), 128u);
  EXPECT_EQ(m.counter("comm.bytes_sent").value(), 128u);
  EXPECT_EQ(m.counter("comm.messages_sent[rank=0]").value(), 1u);

  // The trace carries rank-attributed comm spans from both sides.
  bool saw_send = false, saw_recv = false, saw_barrier = false;
  for (const auto& ev : Telemetry::instance().events()) {
    const std::string name = ev.name;
    if (name == "comm/send" && ev.rank == 0) saw_send = true;
    if (name == "comm/recv" && ev.rank == 1) saw_recv = true;
    if (name == "comm/barrier") saw_barrier = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_barrier);
}

TEST(Integration, DisabledTelemetryRecordsNoCommMetrics) {
  Telemetry::instance().reset();
  Telemetry::instance().set_enabled(false);
  comm::Runtime::run(2, [](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> payload(4, 1.0);
      comm.send(1, 7, payload);
    } else {
      std::vector<double> in;
      comm.recv(0, 7, in);
    }
  });
  EXPECT_TRUE(Telemetry::instance().events().empty());
  EXPECT_TRUE(metrics().counter_names().empty());
}

}  // namespace
}  // namespace antmoc::telemetry
