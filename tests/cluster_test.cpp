#include <gtest/gtest.h>

#include "cluster/scaling.h"
#include "util/error.h"

namespace antmoc::cluster {
namespace {

WorkloadSpec strong_workload() {
  WorkloadSpec w;
  w.strong = true;
  w.tracks_per_gpu_base = 54581544;
  w.base_gpus = 1000;
  return w;
}

WorkloadSpec weak_workload() {
  WorkloadSpec w = strong_workload();
  w.strong = false;
  w.tracks_per_gpu_base = 5124596;
  return w;
}

const std::vector<int> kGpuCounts{1000, 2000, 4000, 8000, 16000};

TEST(Scaling, DeterministicForFixedSeed) {
  const ScalingSimulator sim(MachineSpec{}, strong_workload());
  const auto a = sim.evaluate(2000, MappingConfig::all());
  const auto b = sim.evaluate(2000, MappingConfig::all());
  EXPECT_DOUBLE_EQ(a.time_per_iteration_s, b.time_per_iteration_s);
  EXPECT_DOUBLE_EQ(a.gpu_load_uniformity, b.gpu_load_uniformity);
}

TEST(Scaling, StrongScalingReducesIterationTime) {
  const ScalingSimulator sim(MachineSpec{}, strong_workload());
  const auto pts = sim.sweep(kGpuCounts, MappingConfig::all());
  ASSERT_EQ(pts.size(), kGpuCounts.size());
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(pts[i].time_per_iteration_s,
              pts[i - 1].time_per_iteration_s);
  EXPECT_DOUBLE_EQ(pts.front().efficiency, 1.0);
}

TEST(Scaling, StrongEfficiencyInPaperBandAt16k) {
  // Paper: 70.69% strong-scaling efficiency at 16,000 GPUs with all
  // optimizations; reproduce the band, not the exact digit.
  const ScalingSimulator sim(MachineSpec{}, strong_workload());
  const auto pts = sim.sweep(kGpuCounts, MappingConfig::all());
  const auto& last = pts.back();
  EXPECT_EQ(last.gpus, 16000);
  EXPECT_GT(last.efficiency, 0.55);
  EXPECT_LT(last.efficiency, 0.95);
}

TEST(Scaling, ResidencyBumpAppearsAsGpusGrow) {
  // Paper §5.5: at >= 8000 GPUs per-GPU segments fit the Manager budget,
  // all tracks become resident, and efficiency improves.
  const ScalingSimulator sim(MachineSpec{}, strong_workload());
  const auto pts = sim.sweep(kGpuCounts, MappingConfig::all());
  EXPECT_LT(pts.front().resident_fraction, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().resident_fraction, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GE(pts[i].resident_fraction, pts[i - 1].resident_fraction);
}

TEST(Scaling, LoadMappingImprovesStrongScaling) {
  // Paper: >= 12% gain from balancing at the largest scale.
  const ScalingSimulator sim(MachineSpec{}, strong_workload());
  const auto with = sim.evaluate(16000, MappingConfig::all());
  const auto without = sim.evaluate(16000, MappingConfig::none());
  EXPECT_LT(with.time_per_iteration_s, without.time_per_iteration_s);
  const double gain = (without.time_per_iteration_s -
                       with.time_per_iteration_s) /
                      without.time_per_iteration_s;
  EXPECT_GT(gain, 0.08);
  EXPECT_LT(with.gpu_load_uniformity, without.gpu_load_uniformity);
}

TEST(Scaling, WeakEfficiencyInPaperBandAt16k) {
  // Paper: 89.38% weak-scaling efficiency at 16,000 GPUs (174.66 billion
  // tracks).
  const ScalingSimulator sim(MachineSpec{}, weak_workload());
  const auto pts = sim.sweep(kGpuCounts, MappingConfig::all());
  const auto& last = pts.back();
  EXPECT_GT(last.efficiency, 0.80);
  EXPECT_LE(last.efficiency, 1.0);
  // Total tracks at 16k GPUs: the paper quotes 174.66 billion-scale.
  EXPECT_GT(last.total_tracks, 5124596L * 16000L * 0.99);
}

TEST(Scaling, WeakScalingDegradesWithoutBalancing) {
  const ScalingSimulator sim(MachineSpec{}, weak_workload());
  const auto with = sim.sweep(kGpuCounts, MappingConfig::all());
  const auto without = sim.sweep(kGpuCounts, MappingConfig::none());
  EXPECT_GT(with.back().efficiency, without.back().efficiency);
}

TEST(Scaling, MappingLevelsEachContribute) {
  const ScalingSimulator sim(MachineSpec{}, strong_workload());
  MappingConfig l1_only{true, false, false};
  MappingConfig l1_l2{true, true, false};
  const auto none = sim.evaluate(4000, MappingConfig::none());
  const auto l1 = sim.evaluate(4000, l1_only);
  const auto l12 = sim.evaluate(4000, l1_l2);
  const auto all = sim.evaluate(4000, MappingConfig::all());
  EXPECT_LE(l1.gpu_load_uniformity, none.gpu_load_uniformity + 1e-9);
  EXPECT_LT(l12.gpu_load_uniformity, l1.gpu_load_uniformity);
  EXPECT_LT(all.cu_uniformity, l12.cu_uniformity);
  EXPECT_LT(all.time_per_iteration_s, none.time_per_iteration_s);
}

TEST(Scaling, RejectsSubNodeGpuCounts) {
  const ScalingSimulator sim(MachineSpec{}, strong_workload());
  EXPECT_THROW(sim.evaluate(2, MappingConfig::all()), Error);
}

}  // namespace
}  // namespace antmoc::cluster
