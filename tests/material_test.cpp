#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "material/c5g7.h"
#include "material/material.h"
#include "util/error.h"

namespace antmoc {
namespace {

// ---------------------------------------------------------------- basics ---

TEST(Material, ConstructorZeroInitializes) {
  Material m("empty", 3);
  EXPECT_EQ(m.num_groups(), 3);
  EXPECT_EQ(m.name(), "empty");
  EXPECT_DOUBLE_EQ(m.sigma_t(0), 0.0);
  EXPECT_DOUBLE_EQ(m.sigma_s(2, 1), 0.0);
  EXPECT_FALSE(m.is_fissile());
}

TEST(Material, RejectsWrongSizedData) {
  Material m("m", 3);
  EXPECT_THROW(m.set_sigma_t({1.0, 2.0}), Error);
  EXPECT_THROW(m.set_chi({1.0, 0.0, 0.0, 0.0}), Error);
  EXPECT_THROW(m.set_sigma_s(std::vector<double>(8, 0.0)), Error);
}

TEST(Material, SigmaAIsTotalMinusOutscatter) {
  Material m("m", 2);
  m.set_sigma_t({1.0, 2.0});
  m.set_sigma_s({0.3, 0.2,    // g1 -> g1, g1 -> g2
                 0.0, 1.5});  // g2 -> g2
  EXPECT_NEAR(m.sigma_a(0), 0.5, 1e-14);
  EXPECT_NEAR(m.sigma_a(1), 0.5, 1e-14);
}

TEST(Material, ValidateCatchesExcessScatter) {
  Material m("bad", 1);
  m.set_sigma_t({1.0});
  m.set_sigma_s({1.5});  // out-scatter > sigma_t
  EXPECT_THROW(m.validate(), Error);
}

TEST(Material, ValidateCatchesBadChi) {
  Material m("bad_chi", 2);
  m.set_sigma_t({1.0, 1.0});
  m.set_nu_sigma_f({0.5, 0.5});
  m.set_chi({0.3, 0.3});  // sums to 0.6
  EXPECT_THROW(m.validate(), Error);
}

TEST(Material, ValidateCatchesNegativeEntries) {
  Material m("neg", 1);
  m.set_sigma_t({1.0});
  m.set_nu_sigma_f({-0.1});
  EXPECT_THROW(m.validate(), Error);
}

// -------------------------------------------------------- infinite medium ---

TEST(InfiniteMedium, OneGroupAnalytic) {
  // One group: k_inf = nu_sigma_f / sigma_a, exactly.
  Material m("one_group", 1);
  m.set_sigma_t({1.0});
  m.set_sigma_s({0.4});
  m.set_nu_sigma_f({0.9});
  m.set_chi({1.0});
  EXPECT_NEAR(infinite_medium_k(m), 0.9 / 0.6, 1e-9);
}

TEST(InfiniteMedium, TwoGroupAnalytic) {
  // Classic 2-group: fast fission + slowing down, no upscatter:
  //  k = [nuSf1 + nuSf2 * (S12/Sa2... )] / removal — compute by hand.
  Material m("two_group", 2);
  m.set_sigma_t({1.0, 2.0});
  m.set_sigma_s({0.5, 0.2,   // g1: self 0.5, down 0.2
                 0.0, 1.0});  // g2: self 1.0
  m.set_nu_sigma_f({0.1, 1.2});
  m.set_chi({1.0, 0.0});
  // Balance: removal1 = 1.0-0.5 = 0.5; absorption+down = Sa1=0.3, S12=0.2.
  // phi2 = S12 phi1 / (Sa2 = 1.0). With chi all in g1:
  //  k = [nuSf1 phi1 + nuSf2 phi2] / (removal1 phi1)
  //  phi1 = 1, phi2 = 0.2; k = (0.1 + 1.2*0.2) / 0.5 = 0.68.
  EXPECT_NEAR(infinite_medium_k(m), 0.68, 1e-9);
}

TEST(InfiniteMedium, NonFissileReturnsZero) {
  Material m("inert", 2);
  m.set_sigma_t({1.0, 1.0});
  EXPECT_DOUBLE_EQ(infinite_medium_k(m), 0.0);
  EXPECT_THROW(infinite_medium_flux(m), Error);
}

TEST(InfiniteMedium, FluxSatisfiesGroupBalance) {
  const auto mats = c5g7::materials();
  const auto& uo2 = mats[c5g7::kUO2];
  const double k = infinite_medium_k(uo2);
  const auto phi = infinite_medium_flux(uo2);
  double fission = 0.0;
  for (int g = 0; g < uo2.num_groups(); ++g)
    fission += uo2.nu_sigma_f(g) * phi[g];
  for (int g = 0; g < uo2.num_groups(); ++g) {
    double in_scatter = 0.0;
    for (int gp = 0; gp < uo2.num_groups(); ++gp)
      in_scatter += uo2.sigma_s(gp, g) * phi[gp];
    const double balance =
        uo2.sigma_t(g) * phi[g] - in_scatter - uo2.chi(g) * fission / k;
    EXPECT_NEAR(balance, 0.0, 1e-8) << "group " << g;
  }
}

// ------------------------------------------------------------------ C5G7 ---

TEST(C5G7, ProvidesAllEightMaterials) {
  const auto mats = c5g7::materials();
  ASSERT_EQ(mats.size(), static_cast<std::size_t>(c5g7::kNumMaterials));
  EXPECT_EQ(mats[c5g7::kUO2].name(), "UO2");
  EXPECT_EQ(mats[c5g7::kModerator].name(), "Moderator");
  EXPECT_EQ(mats[c5g7::kControlRod].name(), "ControlRod");
  for (const auto& m : mats) EXPECT_EQ(m.num_groups(), c5g7::kNumGroups);
}

TEST(C5G7, FissileFlagsAreCorrect) {
  const auto mats = c5g7::materials();
  EXPECT_TRUE(mats[c5g7::kUO2].is_fissile());
  EXPECT_TRUE(mats[c5g7::kMOX43].is_fissile());
  EXPECT_TRUE(mats[c5g7::kMOX70].is_fissile());
  EXPECT_TRUE(mats[c5g7::kMOX87].is_fissile());
  EXPECT_TRUE(mats[c5g7::kFissionChamber].is_fissile());
  EXPECT_FALSE(mats[c5g7::kGuideTube].is_fissile());
  EXPECT_FALSE(mats[c5g7::kModerator].is_fissile());
  EXPECT_FALSE(mats[c5g7::kControlRod].is_fissile());
}

TEST(C5G7, AllMaterialsPassValidation) {
  // materials() validates internally; re-validate explicitly.
  for (const auto& m : c5g7::materials()) EXPECT_NO_THROW(m.validate());
}

TEST(C5G7, AbsorptionPositiveEverywhere) {
  for (const auto& m : c5g7::materials())
    for (int g = 0; g < m.num_groups(); ++g)
      EXPECT_GT(m.sigma_a(g), 0.0) << m.name() << " group " << g;
}

TEST(C5G7, FuelKInfinityInPhysicalRange) {
  // These are *bare fuel pellet* materials: with no water to thermalize,
  // neutrons are absorbed in the resonance groups before reaching the
  // highly multiplicative thermal group, so an infinite medium of pure
  // fuel sits near or below critical (unlike a moderated pin cell at
  // k ~ 1.3). Assert a window wide enough for that physics but tight
  // enough to catch a transcription typo in a major cross section.
  const auto mats = c5g7::materials();
  for (int id : {c5g7::kUO2, c5g7::kMOX43, c5g7::kMOX70, c5g7::kMOX87}) {
    const double k = infinite_medium_k(mats[id]);
    EXPECT_GT(k, 0.5) << mats[id].name();
    EXPECT_LT(k, 1.5) << mats[id].name();
  }
}

TEST(C5G7, MoxEnrichmentOrderingHolds) {
  // Higher plutonium content -> higher k_inf.
  const auto mats = c5g7::materials();
  const double k43 = infinite_medium_k(mats[c5g7::kMOX43]);
  const double k70 = infinite_medium_k(mats[c5g7::kMOX70]);
  const double k87 = infinite_medium_k(mats[c5g7::kMOX87]);
  EXPECT_LT(k43, k70);
  EXPECT_LT(k70, k87);
}

TEST(C5G7, ControlRodIsAStrongAbsorber) {
  const auto mats = c5g7::materials();
  const auto& rod = mats[c5g7::kControlRod];
  const auto& mod = mats[c5g7::kModerator];
  // Thermal-group absorption of the rod dominates the moderator's.
  const int thermal = c5g7::kNumGroups - 1;
  EXPECT_GT(rod.sigma_a(thermal), 5.0 * mod.sigma_a(thermal));
}

TEST(C5G7, ChiNormalizedForFissileMaterials) {
  for (const auto& m : c5g7::materials()) {
    if (!m.is_fissile()) continue;
    double sum = 0.0;
    for (int g = 0; g < m.num_groups(); ++g) sum += m.chi(g);
    EXPECT_NEAR(sum, 1.0, 1e-4) << m.name();
  }
}

TEST(C5G7, ScatteringIsPredominantlyDownInEnergy) {
  // No strong upscatter above one group away (benchmark data property).
  for (const auto& m : c5g7::materials())
    for (int g = 0; g < m.num_groups(); ++g)
      for (int gp = 0; gp < g - 1; ++gp)
        EXPECT_EQ(m.sigma_s(g, gp), 0.0)
            << m.name() << " scatters " << g << "->" << gp;
}

}  // namespace
}  // namespace antmoc
