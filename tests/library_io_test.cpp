#include <gtest/gtest.h>

#include <fstream>

#include "io/writers.h"
#include "material/c5g7.h"
#include "material/library_io.h"
#include "models/c5g7_model.h"
#include "util/cli.h"
#include "util/error.h"

namespace antmoc {
namespace {

const char* kTwoGroupLibrary = R"(
# A tiny two-group library.
groups: 2
material: fuel
  sigma_t:    [1.0, 2.0]
  sigma_s:    [0.5, 0.2, 0.0, 1.0]
  sigma_f:    [0.04, 0.4]
  nu_sigma_f: [0.1, 1.2]
  chi:        [1.0, 0.0]
material: water
  sigma_t:    [0.8, 1.4]
  sigma_s:    [0.4, 0.3, 0.0, 1.2]
)";

TEST(LibraryIo, ParsesMaterialsInOrder) {
  const auto mats = material_io::parse_library(kTwoGroupLibrary);
  ASSERT_EQ(mats.size(), 2u);
  EXPECT_EQ(mats[0].name(), "fuel");
  EXPECT_EQ(mats[1].name(), "water");
  EXPECT_EQ(mats[0].num_groups(), 2);
  EXPECT_DOUBLE_EQ(mats[0].sigma_t(1), 2.0);
  EXPECT_DOUBLE_EQ(mats[0].sigma_s(0, 1), 0.2);
  EXPECT_TRUE(mats[0].is_fissile());
  EXPECT_FALSE(mats[1].is_fissile());
  // The parsed fuel matches the analytic two-group k from material_test.
  EXPECT_NEAR(infinite_medium_k(mats[0]), 0.68, 1e-9);
}

TEST(LibraryIo, FormatRoundTrips) {
  const auto original = material_io::parse_library(kTwoGroupLibrary);
  const auto again =
      material_io::parse_library(material_io::format_library(original));
  ASSERT_EQ(again.size(), original.size());
  for (std::size_t m = 0; m < original.size(); ++m)
    for (int g = 0; g < 2; ++g) {
      EXPECT_DOUBLE_EQ(again[m].sigma_t(g), original[m].sigma_t(g));
      EXPECT_DOUBLE_EQ(again[m].nu_sigma_f(g), original[m].nu_sigma_f(g));
      for (int gp = 0; gp < 2; ++gp)
        EXPECT_DOUBLE_EQ(again[m].sigma_s(g, gp),
                         original[m].sigma_s(g, gp));
    }
}

TEST(LibraryIo, C5G7RoundTripsThroughText) {
  const auto original = c5g7::materials();
  const auto again =
      material_io::parse_library(material_io::format_library(original));
  ASSERT_EQ(again.size(), original.size());
  for (std::size_t m = 0; m < original.size(); ++m) {
    EXPECT_EQ(again[m].name(), original[m].name());
    for (int g = 0; g < 7; ++g)
      EXPECT_NEAR(again[m].sigma_t(g), original[m].sigma_t(g), 1e-12);
  }
}

TEST(LibraryIo, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "/lib.xs";
  {
    std::ofstream out(path);
    out << kTwoGroupLibrary;
  }
  const auto mats = material_io::load_library(path);
  EXPECT_EQ(mats.size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(material_io::load_library("/nonexistent/lib.xs"), Error);
}

TEST(LibraryIo, RejectsMalformedInput) {
  EXPECT_THROW(material_io::parse_library(""), Error);
  EXPECT_THROW(material_io::parse_library("material: m\n"), Error);  // no groups
  EXPECT_THROW(material_io::parse_library("groups: 2\nsigma_t: [1, 2]\n"),
               Error);  // datum outside material
  EXPECT_THROW(material_io::parse_library(
                   "groups: 2\nmaterial: m\n  sigma_t: [1.0]\n"),
               Error);  // wrong length
  EXPECT_THROW(material_io::parse_library(
                   "groups: 2\nmaterial: m\n  bogus_key: [1, 2]\n"),
               Error);
  // Fissile material without chi is rejected at the next block boundary.
  EXPECT_THROW(material_io::parse_library(
                   "groups: 1\nmaterial: f\n  sigma_t: [1.0]\n"
                   "  nu_sigma_f: [0.5]\nmaterial: w\n  sigma_t: [1.0]\n"),
               Error);
}

// ------------------------------------------------------- PGM material map ---

TEST(MaterialMapPgm, WritesValidHeaderAndBody) {
  const auto model = models::build_pin_cell(1, 1.0);
  const std::string path = ::testing::TempDir() + "/pin.pgm";
  io::write_material_map_pgm(path, model.geometry, 16);
  std::ifstream in(path);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P2");
  EXPECT_EQ(w, 16);
  EXPECT_EQ(h, 16);
  EXPECT_EQ(maxv, 255);
  int count = 0, v = 0, distinct_low = 1 << 30, distinct_high = -1;
  while (in >> v) {
    ++count;
    distinct_low = std::min(distinct_low, v);
    distinct_high = std::max(distinct_high, v);
  }
  EXPECT_EQ(count, 16 * 16);
  // Fuel and moderator map to different gray levels.
  EXPECT_NE(distinct_low, distinct_high);
  std::remove(path.c_str());
  EXPECT_THROW(io::write_material_map_pgm(path, model.geometry, 1), Error);
}

// -------------------------------------------------------- single-dash CLI ---

TEST(CliArtifactStyle, SingleDashFormsAccepted) {
  const std::string path = ::testing::TempDir() + "/artifact.yaml";
  {
    std::ofstream out(path);
    out << "alpha: 3\n";
  }
  const std::string arg = "-config=" + path;
  const char* argv[] = {"newmoc", arg.c_str(), "-beta=4", "-flag"};
  const auto cfg = parse_cli(4, argv);
  EXPECT_EQ(cfg.get_int("alpha"), 3);
  EXPECT_EQ(cfg.get_int("beta"), 4);
  EXPECT_TRUE(cfg.get_bool("flag"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace antmoc
