/// \file memory_test.cpp
/// Compact segment-store suite (DESIGN.md §15): layout constants, arena
/// accounting in both storage modes, the Managed budget packing ~2x the
/// tracks under compact, the bounded accuracy contract (|dk| <= 2 pcm,
/// per-FSR flux RMS <= 1e-5 relative), event/history agreement under
/// compact chords, the compact event-OOM fallback, checkpoint round-trip
/// of the storage mode, and the track.storage telemetry gauges.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "models/c5g7_model.h"
#include "perfmodel/layout.h"
#include "perfmodel/perfmodel.h"
#include "solver/cpu_solver.h"
#include "solver/event_sweep.h"
#include "solver/gpu_solver.h"
#include "solver/track_policy.h"
#include "telemetry/telemetry.h"
#include "util/error.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem pin_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return Problem(models::build_core(opt), 4, 0.5, 2, 1.0);
}

SolveOptions fixed(int iterations) {
  SolveOptions opts;
  opts.fixed_iterations = iterations;
  return opts;
}

void expect_bitwise_flux(TransportSolver& a, TransportSolver& b) {
  const auto& fa = a.fsr().scalar_flux();
  const auto& fb = b.fsr().scalar_flux();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]) << i;
  const auto& pa = a.psi_in();
  const auto& pb = b.psi_in();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]) << i;
}

// ---------------------------------------------------- layout regression ---

TEST(CompactLayout, ConstantsMatchTheStructsAndHelpers) {
  // The perf model prices Eq. 5 with these constants; if the structs ever
  // drift (padding, field widths), the predictions silently rot.
  EXPECT_EQ(sizeof(Segment3D), perf::kSegment3DBytes);
  EXPECT_EQ(sizeof(Segment2D), perf::kSegment2DBytes);
  EXPECT_EQ(sizeof(std::int32_t) + sizeof(float),
            perf::kSegment3DCompactBytes);
  EXPECT_EQ(perf::kSegment3DCompactBytes, 8u);
  EXPECT_EQ(perf::segment3d_bytes(TrackStorage::kExact),
            perf::kSegment3DBytes);
  EXPECT_EQ(perf::segment3d_bytes(TrackStorage::kCompact),
            perf::kSegment3DCompactBytes);
  // Event lanes: both directions of a segment, int32 base + chord.
  EXPECT_EQ(perf::kEventBytes, 2 * (sizeof(std::int32_t) + sizeof(double)));
  EXPECT_EQ(perf::kEventBytesCompact,
            2 * (sizeof(std::int32_t) + sizeof(float)));
  EXPECT_EQ(perf::event_bytes(TrackStorage::kExact), perf::kEventBytes);
  EXPECT_EQ(perf::event_bytes(TrackStorage::kCompact),
            perf::kEventBytesCompact);
}

TEST(CompactLayout, EventBytesForPricesBothModes) {
  const long segments = 1000, tracks = 64;
  const std::size_t ranges = (2 * tracks + 1) * sizeof(long);
  EXPECT_EQ(EventArrays::bytes_for(segments, tracks),
            segments * perf::kEventBytes + ranges);
  EXPECT_EQ(EventArrays::bytes_for(segments, tracks, TrackStorage::kCompact),
            segments * perf::kEventBytesCompact + ranges);
  // Compact shrinks the chord lane from double to float (24 -> 16 bytes
  // per segment: the int32 base lane is mode-free, as is the range table).
  EXPECT_EQ(3 * (EventArrays::bytes_for(segments, tracks,
                                        TrackStorage::kCompact) -
                 ranges),
            2 * (EventArrays::bytes_for(segments, tracks) - ranges));
}

TEST(MemoryModelEq5, CompactStorageHalvesTheSegmentTerm) {
  perf::MemoryModel model;
  const auto exact = model.predict(100, 2000, 1000, 50000, 0.5);
  const auto compact =
      model.predict(100, 2000, 1000, 50000, 0.5, TrackStorage::kCompact);
  EXPECT_EQ(exact.segments_3d, 2 * compact.segments_3d);
  EXPECT_EQ(exact.tracks_3d, compact.tracks_3d);
  EXPECT_EQ(exact.track_fluxes, compact.track_fluxes);
}

TEST(TrackStorageKnob, EnvDefault) {
  ASSERT_EQ(setenv("ANTMOC_TRACK_STORAGE", "compact", 1), 0);
  EXPECT_EQ(default_track_storage(), TrackStorage::kCompact);
  ASSERT_EQ(setenv("ANTMOC_TRACK_STORAGE", "exact", 1), 0);
  EXPECT_EQ(default_track_storage(), TrackStorage::kExact);
  ASSERT_EQ(unsetenv("ANTMOC_TRACK_STORAGE"), 0);
  EXPECT_EQ(default_track_storage(), TrackStorage::kExact);
}

// --------------------------------------------------- resident store -------

TEST(CompactStore, ReplayMatchesTheWalkWithExactlyOneRounding) {
  Problem p = pin_problem();
  TrackManager manager(p.stacks, TrackPolicy::kExplicit, nullptr, 0, nullptr,
                       TrackStorage::kCompact);
  EXPECT_EQ(manager.storage(), TrackStorage::kCompact);
  // Compact has no AoS records to hand out.
  long count = 0;
  EXPECT_EQ(manager.segments(0, count), nullptr);

  for (long id = 0; id < p.stacks.num_tracks(); ++id) {
    for (bool forward : {true, false}) {
      std::vector<long> walk_fsr;
      std::vector<double> walk_len;
      p.stacks.for_each_segment(p.stacks.info(id), forward,
                                [&](long fsr, double len) {
                                  walk_fsr.push_back(fsr);
                                  walk_len.push_back(len);
                                });
      std::size_t s = 0;
      ASSERT_TRUE(manager.for_each_resident_segment(
          id, forward, [&](long fsr, double len) {
            ASSERT_LT(s, walk_fsr.size());
            EXPECT_EQ(fsr, walk_fsr[s]);
            // The one rounding point: store fp32, widen back losslessly.
            EXPECT_EQ(len, static_cast<double>(
                               static_cast<float>(walk_len[s])));
            ++s;
          }));
      EXPECT_EQ(s, walk_fsr.size());
    }
  }
}

TEST(CompactStore, ArenaChargeMatchesBytesForInBothModes) {
  Problem p = pin_problem();
  const long segments = p.stacks.total_segments();
  for (TrackStorage storage :
       {TrackStorage::kExact, TrackStorage::kCompact}) {
    gpusim::Device device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    TrackManager manager(p.stacks, TrackPolicy::kExplicit, &device, 0,
                         nullptr, storage);
    EXPECT_EQ(manager.resident_segments(), segments);
    EXPECT_EQ(manager.resident_bytes(),
              static_cast<std::size_t>(segments) *
                  perf::segment3d_bytes(storage));
    const auto breakdown = device.memory().breakdown();
    ASSERT_TRUE(breakdown.count("3d_segments"));
    EXPECT_EQ(breakdown.at("3d_segments"), manager.resident_bytes());
  }
}

TEST(CompactStore, EventArraysChargeMatchesBytesForInBothModes) {
  Problem p = pin_problem();
  for (TrackStorage storage :
       {TrackStorage::kExact, TrackStorage::kCompact}) {
    gpusim::Device device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    GpuSolverOptions opts;
    opts.policy = TrackPolicy::kExplicit;
    opts.backend = SweepBackend::kEvent;
    opts.storage = storage;
    GpuSolver solver(p.stacks, p.model.materials, device, opts);
    ASSERT_TRUE(solver.event_active());
    const auto breakdown = device.memory().breakdown();
    ASSERT_TRUE(breakdown.count("event_arrays"));
    EXPECT_EQ(breakdown.at("event_arrays"),
              EventArrays::bytes_for(p.stacks.total_segments(),
                                     p.stacks.num_tracks(), storage));
  }
}

TEST(CompactStore, ManagedBudgetPacksMoreResidentSegments) {
  Problem p = pin_problem();
  // A budget that holds roughly half the exact store, so compact (half
  // the bytes per segment) can pack about twice the segments.
  const std::size_t budget = static_cast<std::size_t>(
      p.stacks.total_segments() * perf::kSegment3DBytes / 2);
  TrackManager exact(p.stacks, TrackPolicy::kManaged, nullptr, budget);
  TrackManager compact(p.stacks, TrackPolicy::kManaged, nullptr, budget,
                       nullptr, TrackStorage::kCompact);
  EXPECT_GT(compact.resident_segments(), exact.resident_segments());
  EXPECT_GT(compact.resident_fraction(), exact.resident_fraction());
  EXPECT_LE(compact.resident_bytes(), budget);
  // Same byte budget, ~2x the resident segments.
  EXPECT_GE(compact.resident_segments(),
            2 * exact.resident_segments() - 1);
}

// ---------------------------------------------------- accuracy contract ---

TEST(CompactAccuracy, KeffWithinTwoPcmAndFluxRmsBounded) {
  Problem p = pin_problem();
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 20000;

  CpuSolver exact(p.stacks, p.model.materials, 2, TemplateMode::kAuto,
                  SweepBackend::kHistory, TrackStorage::kExact);
  CpuSolver compact(p.stacks, p.model.materials, 2, TemplateMode::kAuto,
                    SweepBackend::kHistory, TrackStorage::kCompact);
  const auto re = exact.solve(opts);
  const auto rc = compact.solve(opts);
  ASSERT_TRUE(re.converged);
  ASSERT_TRUE(rc.converged);

  // |dk| <= 2 pcm: fp32 chords carry ~1e-7 relative error, far inside
  // the bar, but the bar is what the mode contracts to.
  EXPECT_NEAR(rc.k_eff, re.k_eff, 2e-5);

  const auto& fe = exact.fsr().scalar_flux();
  const auto& fc = compact.fsr().scalar_flux();
  ASSERT_EQ(fe.size(), fc.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < fe.size(); ++i) {
    ASSERT_GT(fe[i], 0.0);
    const double rel = (fc[i] - fe[i]) / fe[i];
    sum += rel * rel;
  }
  const double rms = std::sqrt(sum / static_cast<double>(fe.size()));
  EXPECT_LE(rms, 1e-5);
}

TEST(CompactConformance, ExplicitStorageMatchesTheKnobDefault) {
  // `exact` must be byte-for-byte the seed behavior: a solver constructed
  // with the explicit knob equals one built with all defaults.
  Problem p = pin_problem();
  CpuSolver implicit_mode(p.stacks, p.model.materials, 2);
  CpuSolver explicit_mode(p.stacks, p.model.materials, 2,
                          TemplateMode::kAuto, SweepBackend::kHistory,
                          TrackStorage::kExact);
  EXPECT_EQ(implicit_mode.storage_mode(), TrackStorage::kExact);
  const auto ri = implicit_mode.solve(fixed(5));
  const auto rx = explicit_mode.solve(fixed(5));
  EXPECT_EQ(ri.k_eff, rx.k_eff);
  expect_bitwise_flux(implicit_mode, explicit_mode);
}

// ------------------------------------------ event backend under compact ---

TEST(CompactConformance, EventBackendBitwiseIdenticalToCompactHistory) {
  Problem p = pin_problem();
  for (unsigned workers : {1u, 2u}) {
    CpuSolver history(p.stacks, p.model.materials, workers,
                      TemplateMode::kAuto, SweepBackend::kHistory,
                      TrackStorage::kCompact);
    CpuSolver event(p.stacks, p.model.materials, workers,
                    TemplateMode::kAuto, SweepBackend::kEvent,
                    TrackStorage::kCompact);
    const auto rh = history.solve(fixed(5));
    const auto re = event.solve(fixed(5));
    EXPECT_EQ(event.active_sweep_backend(), SweepBackend::kEvent);
    EXPECT_EQ(rh.k_eff, re.k_eff) << "workers=" << workers;
    expect_bitwise_flux(history, event);
  }
}

TEST(CompactConformance, DeviceEventBitwiseIdenticalToDeviceHistory) {
  Problem p = pin_problem();
  GpuSolverOptions opts;
  opts.policy = TrackPolicy::kExplicit;
  opts.storage = TrackStorage::kCompact;

  gpusim::Device hist_dev(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  opts.backend = SweepBackend::kHistory;
  GpuSolver history(p.stacks, p.model.materials, hist_dev, opts);
  EXPECT_EQ(history.storage_mode(), TrackStorage::kCompact);
  const auto rh = history.solve(fixed(5));

  gpusim::Device event_dev(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  opts.backend = SweepBackend::kEvent;
  GpuSolver event(p.stacks, p.model.materials, event_dev, opts);
  ASSERT_TRUE(event.event_active());
  const auto re = event.solve(fixed(5));

  // One chord policy, one recurrence: the event organization moves no
  // bits relative to the compact history sweep.
  EXPECT_EQ(rh.k_eff, re.k_eff);
  expect_bitwise_flux(history, event);

  // And the device physics stays within accumulation-order noise of the
  // compact host reference.
  CpuSolver host(p.stacks, p.model.materials, 1, TemplateMode::kAuto,
                 SweepBackend::kHistory, TrackStorage::kCompact);
  const auto rc = host.solve(fixed(5));
  EXPECT_NEAR(rh.k_eff, rc.k_eff, 1e-5 * rc.k_eff);
}

TEST(CompactConformance, EventOomFallbackIsFluxIdenticalCompact) {
  Problem p = pin_problem();
  GpuSolverOptions opts;
  opts.policy = TrackPolicy::kExplicit;
  opts.privatize = PrivatizeMode::kOff;
  opts.templates = TemplateMode::kOff;
  opts.storage = TrackStorage::kCompact;

  // Mandatory compact footprint without the event arrays; a tight arena
  // affords this plus a sliver, so only the "event_arrays" charge fails.
  std::size_t base = 0;
  {
    gpusim::Device probe(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    opts.backend = SweepBackend::kHistory;
    GpuSolver solver(p.stacks, p.model.materials, probe, opts);
    base = probe.memory().used();
  }
  const auto tight = gpusim::DeviceSpec::scaled(base + 1024, 8);

  gpusim::Device hist_dev(tight);
  opts.backend = SweepBackend::kHistory;
  GpuSolver history(p.stacks, p.model.materials, hist_dev, opts);
  const auto rh = history.solve(fixed(4));

  gpusim::Device event_dev(tight);
  opts.backend = SweepBackend::kEvent;
  GpuSolver fallback(p.stacks, p.model.materials, event_dev, opts);
  EXPECT_FALSE(fallback.event_active());
  EXPECT_EQ(fallback.active_sweep_backend(), SweepBackend::kHistory);
  EXPECT_EQ(fallback.storage_mode(), TrackStorage::kCompact);
  EXPECT_FALSE(event_dev.memory().breakdown().count("event_arrays"));
  const auto re = fallback.solve(fixed(4));

  // The fallback sheds the arrays, never the chord policy: bitwise the
  // compact history solve.
  EXPECT_EQ(rh.k_eff, re.k_eff);
  expect_bitwise_flux(history, fallback);
}

// ------------------------------------------------- checkpoint round-trip --

TEST(CompactCheckpoint, StorageModeRoundTripsAndMismatchIsRejected) {
  Problem p = pin_problem();
  const std::string path = ::testing::TempDir() + "/antmoc_compact.ckpt";
  std::remove(path.c_str());

  // Uninterrupted compact reference: six straight iterations.
  CpuSolver reference(p.stacks, p.model.materials, 1, TemplateMode::kAuto,
                      SweepBackend::kHistory, TrackStorage::kCompact);
  const auto rref = reference.solve(fixed(6));

  CpuSolver writer(p.stacks, p.model.materials, 1, TemplateMode::kAuto,
                   SweepBackend::kHistory, TrackStorage::kCompact);
  writer.solve(fixed(3));
  writer.save_state(path, 3);

  // Same mode: 3 checkpointed + 3 resumed == 6 straight, bitwise.
  CpuSolver reader(p.stacks, p.model.materials, 1, TemplateMode::kAuto,
                   SweepBackend::kHistory, TrackStorage::kCompact);
  reader.load_state(path);
  SolveOptions resume = fixed(3);
  resume.resume = true;
  const auto rr = reader.solve(resume);
  EXPECT_EQ(rr.k_eff, rref.k_eff);
  expect_bitwise_flux(reader, reference);

  // Mode mismatch: a compact checkpoint must not silently feed an exact
  // solver (the chord policies differ); the diagnostic names both modes.
  CpuSolver exact(p.stacks, p.model.materials, 1);
  try {
    exact.load_state(path);
    FAIL() << "expected a storage-mode mismatch diagnostic";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("compact"), std::string::npos) << what;
    EXPECT_NE(what.find("exact"), std::string::npos) << what;
    EXPECT_NE(what.find("track.storage"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------------ telemetry ---

TEST(CompactTelemetry, StorageModeAndResidencyGaugesAreTagged) {
  telemetry::Config cfg;
  cfg.enabled = true;
  telemetry::Telemetry::instance().set_config(cfg);
  telemetry::Telemetry::instance().reset();

  Problem p = pin_problem();
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  TrackManager manager(p.stacks, TrackPolicy::kExplicit, &device, 0, nullptr,
                       TrackStorage::kCompact);

  auto& m = telemetry::metrics();
  EXPECT_DOUBLE_EQ(m.gauge("track.storage_mode").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      m.gauge(telemetry::label("track.resident_bytes", "mode", 1)).value(),
      static_cast<double>(manager.resident_bytes()));
  EXPECT_DOUBLE_EQ(
      m.gauge(telemetry::label("track.resident_fraction", "mode", 1))
          .value(),
      1.0);

  telemetry::Telemetry::instance().reset();
  telemetry::Telemetry::instance().set_enabled(false);
}

}  // namespace
}  // namespace antmoc
