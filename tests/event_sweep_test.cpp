/// \file event_sweep_test.cpp
/// Event-backend conformance suite (DESIGN.md §13): the flat event-array
/// sweep must be bitwise identical to the history backend for any fixed
/// worker count, with and without chord templates, on host and device,
/// cold and warm (engine). Also pins the EventArrays layout, the batch
/// ExpTable evaluator, and the kAuto arena-OOM fallback to history.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "engine/session.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/domain_solver.h"
#include "solver/event_sweep.h"
#include "solver/gpu_solver.h"
#include "track/chord_template.h"
#include "util/error.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem pin_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return Problem(models::build_core(opt), 4, 0.5, 2, 1.0);
}

SolveOptions fixed(int iterations) {
  SolveOptions opts;
  opts.fixed_iterations = iterations;
  return opts;
}

void expect_bitwise_flux(TransportSolver& a, TransportSolver& b) {
  const auto& fa = a.fsr().scalar_flux();
  const auto& fb = b.fsr().scalar_flux();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]) << i;
  const auto& pa = a.psi_in();
  const auto& pb = b.psi_in();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]) << i;
}

// ------------------------------------------------------ knob parsing ------

TEST(SweepBackendKnob, ParseAndName) {
  EXPECT_EQ(parse_sweep_backend("history"), SweepBackend::kHistory);
  EXPECT_EQ(parse_sweep_backend("event"), SweepBackend::kEvent);
  EXPECT_THROW(parse_sweep_backend("events"), Error);
  EXPECT_STREQ(sweep_backend_name(SweepBackend::kHistory), "history");
  EXPECT_STREQ(sweep_backend_name(SweepBackend::kEvent), "event");
}

TEST(SweepBackendKnob, EnvDefault) {
  ASSERT_EQ(setenv("ANTMOC_SWEEP_BACKEND", "event", 1), 0);
  EXPECT_EQ(default_sweep_backend(), SweepBackend::kEvent);
  ASSERT_EQ(setenv("ANTMOC_SWEEP_BACKEND", "history", 1), 0);
  EXPECT_EQ(default_sweep_backend(), SweepBackend::kHistory);
  ASSERT_EQ(unsetenv("ANTMOC_SWEEP_BACKEND"), 0);
  EXPECT_EQ(default_sweep_backend(), SweepBackend::kHistory);
}

// -------------------------------------------------- EventArrays layout ----

TEST(EventArrays, MirrorsTheHistoryWalk) {
  Problem p = pin_problem();
  const TrackInfoCache cache(p.stacks);
  const EventArrays events(p.stacks, cache, nullptr, 7);

  EXPECT_EQ(events.num_events(), 2 * p.stacks.total_segments());
  EXPECT_EQ(events.bytes(),
            EventArrays::bytes_for(p.stacks.total_segments(),
                                   p.stacks.num_tracks()));

  // Per-(track, direction) ranges tile [0, num_events) in track order and
  // reproduce exactly the (fsr, length) stream of the generic walk.
  long pos = 0;
  for (long id = 0; id < p.stacks.num_tracks(); ++id) {
    for (int dir = 0; dir < 2; ++dir) {
      EXPECT_EQ(events.first(id, dir), pos) << id << "/" << dir;
      std::vector<std::int32_t> base;
      std::vector<double> len;
      p.stacks.for_each_segment(
          cache[id], dir == 0, [&](long fsr, double length) {
            base.push_back(static_cast<std::int32_t>(fsr * 7));
            len.push_back(length);
          });
      ASSERT_EQ(events.count(id, dir), static_cast<long>(base.size()));
      for (std::size_t s = 0; s < base.size(); ++s) {
        EXPECT_EQ(events.base()[pos], base[s]) << id << "/" << dir << "/" << s;
        EXPECT_EQ(events.length()[pos], len[s]) << id << "/" << dir << "/" << s;
        ++pos;
      }
    }
  }
  EXPECT_EQ(pos, events.num_events());
}

TEST(EventArrays, TemplateExpansionIdenticalToGenericWalk) {
  Problem p = pin_problem();
  const TrackInfoCache cache(p.stacks);
  const ChordTemplateCache templates(p.stacks);
  const EventArrays generic(p.stacks, cache, nullptr, 7);
  const EventArrays templated(p.stacks, cache, &templates, 7);

  ASSERT_EQ(generic.num_events(), templated.num_events());
  for (long e = 0; e < generic.num_events(); ++e) {
    EXPECT_EQ(generic.base()[e], templated.base()[e]) << e;
    EXPECT_EQ(generic.length()[e], templated.length()[e]) << e;
  }
}

// ------------------------------------------- batch ExpTable evaluator -----

TEST(ExpTableBatch, BitwiseIdenticalToScalarOperator) {
  const ExpTable table(40.0, 1e-6);
  std::vector<double> tau;
  for (double t = 1e-6; t < 50.0; t *= 1.31) tau.push_back(t);
  tau.push_back(0.0);
  tau.push_back(-1e-9);   // clamps to 0
  tau.push_back(40.0);    // boundary
  tau.push_back(1e3);     // clamps to 1
  std::vector<double> out(tau.size());
  table.evaluate(tau.data(), out.data(), static_cast<long>(tau.size()));
  for (std::size_t i = 0; i < tau.size(); ++i)
    EXPECT_EQ(out[i], table(tau[i])) << "tau=" << tau[i];
}

// --------------------------------------------------- host bit identity ----

TEST(EventSweepCpu, BitwiseIdenticalToHistoryAcrossWorkersAndTemplates) {
  Problem p = pin_problem();
  for (TemplateMode templates : {TemplateMode::kAuto, TemplateMode::kOff}) {
    for (unsigned workers : {1u, 2u, 4u}) {
      CpuSolver history(p.stacks, p.model.materials, workers, templates,
                        SweepBackend::kHistory);
      CpuSolver event(p.stacks, p.model.materials, workers, templates,
                      SweepBackend::kEvent);
      const auto rh = history.solve(fixed(5));
      const auto re = event.solve(fixed(5));
      EXPECT_EQ(event.active_sweep_backend(), SweepBackend::kEvent);
      EXPECT_EQ(rh.k_eff, re.k_eff)
          << "workers=" << workers << " templates=" << static_cast<int>(templates);
      EXPECT_EQ(rh.residual, re.residual);
      EXPECT_EQ(history.last_sweep_segments(), event.last_sweep_segments());
      expect_bitwise_flux(history, event);
    }
  }
}

TEST(EventSweepCpu, ExpTablePathAlsoBitwiseIdentical) {
  Problem p = pin_problem();
  const ExpTable table(40.0, 1e-6);
  CpuSolver history(p.stacks, p.model.materials, 2, TemplateMode::kAuto,
                    SweepBackend::kHistory);
  CpuSolver event(p.stacks, p.model.materials, 2, TemplateMode::kAuto,
                  SweepBackend::kEvent);
  history.set_exp_table(&table);
  event.set_exp_table(&table);
  const auto rh = history.solve(fixed(5));
  const auto re = event.solve(fixed(5));
  EXPECT_EQ(rh.k_eff, re.k_eff);
  expect_bitwise_flux(history, event);
}

// ------------------------------------------------- device bit identity ----

TEST(EventSweepGpu, BitwiseIdenticalToHistoryAndChargedToArena) {
  Problem p = pin_problem();
  GpuSolverOptions opts;
  opts.resident_budget_bytes = std::size_t{1} << 20;

  gpusim::Device hist_dev(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  opts.backend = SweepBackend::kHistory;
  GpuSolver history(p.stacks, p.model.materials, hist_dev, opts);
  EXPECT_FALSE(history.event_active());
  const auto rh = history.solve(fixed(5));

  gpusim::Device event_dev(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  opts.backend = SweepBackend::kEvent;
  GpuSolver event(p.stacks, p.model.materials, event_dev, opts);
  EXPECT_TRUE(event.event_active());
  EXPECT_EQ(event.active_sweep_backend(), SweepBackend::kEvent);
  const auto re = event.solve(fixed(5));

  EXPECT_EQ(rh.k_eff, re.k_eff);
  expect_bitwise_flux(history, event);

  const auto breakdown = event_dev.memory().breakdown();
  ASSERT_TRUE(breakdown.count("event_arrays"));
  EXPECT_EQ(breakdown.at("event_arrays"),
            EventArrays::bytes_for(p.stacks.total_segments(),
                                   p.stacks.num_tracks()));
  EXPECT_FALSE(hist_dev.memory().breakdown().count("event_arrays"));
}

TEST(EventSweepGpu, AutoFallsBackToHistoryWhenArenaCannotAfford) {
  Problem p = pin_problem();
  GpuSolverOptions opts;
  opts.resident_budget_bytes = std::size_t{1} << 20;
  opts.privatize = PrivatizeMode::kOff;
  opts.templates = TemplateMode::kOff;

  // Mandatory footprint without the event arrays; a tight arena affords
  // this plus a sliver, so only the "event_arrays" charge can fail.
  std::size_t base = 0;
  {
    gpusim::Device probe(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    opts.backend = SweepBackend::kHistory;
    GpuSolver solver(p.stacks, p.model.materials, probe, opts);
    base = probe.memory().used();
  }
  const auto tight = gpusim::DeviceSpec::scaled(base + 1024, 8);

  gpusim::Device hist_dev(tight);
  opts.backend = SweepBackend::kHistory;
  GpuSolver history(p.stacks, p.model.materials, hist_dev, opts);
  const auto rh = history.solve(fixed(4));

  gpusim::Device event_dev(tight);
  opts.backend = SweepBackend::kEvent;
  GpuSolver fallback(p.stacks, p.model.materials, event_dev, opts);
  EXPECT_FALSE(fallback.event_active());
  EXPECT_EQ(fallback.active_sweep_backend(), SweepBackend::kHistory);
  EXPECT_FALSE(event_dev.memory().breakdown().count("event_arrays"));
  const auto re = fallback.solve(fixed(4));

  // The fallback is silent and exact: bitwise the history solve.
  EXPECT_EQ(rh.k_eff, re.k_eff);
  expect_bitwise_flux(history, fallback);
}

// ------------------------------------------------ engine warm == cold -----

TEST(EventSweepDecomposed, TwoDomainRunBitwiseIdenticalToHistory) {
  // The backend contract must survive domain decomposition: each rank
  // sweeps its own laydown, exchanges interface fluxes, and the event
  // organization of those sweeps must not move a single bit of the
  // global answer.
  const auto model = [] {
    models::C5G7Options opt;
    opt.pins_per_assembly = 3;
    opt.fuel_layers = 2;
    opt.reflector_layers = 1;
    opt.height_scale = 0.1;
    return models::build_core(opt);
  }();
  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.5;
  params.num_polar = 2;
  params.z_spacing = 1.0;
  params.sweep_workers = 2;
  SolveOptions opts;
  opts.fixed_iterations = 6;

  params.sweep_backend = SweepBackend::kHistory;
  const auto hist = solve_decomposed(model.geometry, model.materials,
                                     {1, 1, 2}, params, opts);
  params.sweep_backend = SweepBackend::kEvent;
  const auto ev = solve_decomposed(model.geometry, model.materials,
                                   {1, 1, 2}, params, opts);

  EXPECT_EQ(ev.result.k_eff, hist.result.k_eff);
  EXPECT_EQ(ev.result.residual, hist.result.residual);
  ASSERT_EQ(ev.scalar_flux.size(), hist.scalar_flux.size());
  for (std::size_t i = 0; i < ev.scalar_flux.size(); ++i)
    EXPECT_EQ(ev.scalar_flux[i], hist.scalar_flux[i]) << i;
  ASSERT_EQ(ev.fission_rate.size(), hist.fission_rate.size());
  for (std::size_t i = 0; i < ev.fission_rate.size(); ++i)
    EXPECT_EQ(ev.fission_rate[i], hist.fission_rate[i]) << i;
}

TEST(EventSweepEngine, WarmJobsBitwiseIdenticalToColdOneShots) {
  models::C5G7Options mopt;
  mopt.pins_per_assembly = 3;
  mopt.fuel_layers = 2;
  mopt.reflector_layers = 1;
  mopt.height_scale = 0.1;

  engine::SessionOptions opts;
  opts.num_devices = 1;
  opts.device = gpusim::DeviceSpec::scaled(std::size_t{256} << 20, 4);
  opts.num_azim = 4;
  opts.azim_spacing = 0.5;
  opts.num_polar = 2;
  opts.z_spacing = 1.0;
  opts.solve.fixed_iterations = 5;
  opts.sweep_workers = 2;
  opts.gpu.backend = SweepBackend::kEvent;

  engine::Session session(models::build_core(mopt), opts);
  std::vector<engine::Scenario> jobs(2);
  jobs[0].name = "base";
  jobs[1].name = "rodded";
  {
    engine::MaterialOp op;
    op.kind = engine::MaterialOp::Kind::kSwap;
    op.material = 6;
    op.source = 7;
    jobs[1].ops.push_back(op);
  }
  const auto warm = session.run(jobs);
  ASSERT_EQ(warm.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto cold = session.solve_one_shot(jobs[i]);
    ASSERT_TRUE(warm[i].ok) << warm[i].error;
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(warm[i].k_eff, cold.k_eff) << jobs[i].name;
    EXPECT_EQ(warm[i].residual, cold.residual) << jobs[i].name;
    ASSERT_EQ(warm[i].group_flux.size(), cold.group_flux.size());
    for (std::size_t g = 0; g < warm[i].group_flux.size(); ++g)
      EXPECT_EQ(warm[i].group_flux[g], cold.group_flux[g])
          << jobs[i].name << " group " << g;
  }
}

}  // namespace
}  // namespace antmoc
