#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/atomic.h"
#include "gpusim/device.h"
#include "util/error.h"

namespace antmoc::gpusim {
namespace {

DeviceSpec tiny_spec(std::size_t mem = 1 << 20, int cus = 4) {
  DeviceSpec spec = DeviceSpec::scaled(mem, cus);
  return spec;
}

// --------------------------------------------------------- DeviceMemory ---

TEST(DeviceMemory, ChargesAndReleases) {
  DeviceMemory mem(1000);
  mem.charge("tracks", 600);
  EXPECT_EQ(mem.used(), 600u);
  EXPECT_EQ(mem.available(), 400u);
  mem.release("tracks", 600);
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.peak_used(), 600u);
}

TEST(DeviceMemory, ThrowsWhenExceedingCapacity) {
  DeviceMemory mem(1000);
  mem.charge("a", 800);
  EXPECT_THROW(mem.charge("b", 300), DeviceOutOfMemory);
  // Failed charge must not corrupt accounting.
  EXPECT_EQ(mem.used(), 800u);
  EXPECT_NO_THROW(mem.charge("b", 200));
}

TEST(DeviceMemory, TracksPerLabelBreakdown) {
  DeviceMemory mem(10000);
  mem.charge("3d_segments", 5000);
  mem.charge("2d_segments", 200);
  mem.charge("3d_segments", 1000);
  EXPECT_EQ(mem.used_by("3d_segments"), 6000u);
  EXPECT_EQ(mem.used_by("2d_segments"), 200u);
  EXPECT_EQ(mem.used_by("unknown"), 0u);
  const auto breakdown = mem.breakdown();
  EXPECT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown.at("3d_segments"), 6000u);
}

TEST(DeviceMemory, ReleaseOfUnchargedBytesThrows) {
  DeviceMemory mem(1000);
  mem.charge("a", 100);
  EXPECT_THROW(mem.release("a", 200), Error);
  EXPECT_THROW(mem.release("never_seen", 1), Error);
}

TEST(DeviceMemory, PeakPersistsAfterRelease) {
  DeviceMemory mem(1000);
  mem.charge("a", 900);
  mem.release("a", 900);
  mem.charge("a", 100);
  EXPECT_EQ(mem.peak_used(), 900u);
}

// --------------------------------------------------------- DeviceBuffer ---

TEST(DeviceBuffer, RaiiReleasesOnDestruction) {
  DeviceMemory mem(4096);
  {
    DeviceBuffer<double> buf(mem, "flux", 64);
    EXPECT_EQ(buf.size(), 64u);
    EXPECT_EQ(mem.used(), 64 * sizeof(double));
    buf[0] = 1.25;
    EXPECT_DOUBLE_EQ(buf[0], 1.25);
  }
  EXPECT_EQ(mem.used(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  DeviceMemory mem(4096);
  DeviceBuffer<int> a(mem, "x", 10);
  a[3] = 42;
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(mem.used(), 10 * sizeof(int));
  b.reset();
  EXPECT_EQ(mem.used(), 0u);
}

TEST(DeviceBuffer, AllocationFailureThrowsBeforeTouchingStorage) {
  DeviceMemory mem(100);
  EXPECT_THROW(DeviceBuffer<double>(mem, "big", 1000), DeviceOutOfMemory);
  EXPECT_EQ(mem.used(), 0u);
}

// ---------------------------------------------------------------- Device ---

TEST(Device, LaunchVisitsEveryItemExactlyOnce) {
  Device dev(tiny_spec());
  std::vector<int> visits(1000, 0);
  for (Assignment assign : {Assignment::kRoundRobin, Assignment::kBlocked}) {
    std::fill(visits.begin(), visits.end(), 0);
    dev.launch("visit", visits.size(), assign, [&](std::size_t i) {
      device_atomic_add(visits[i], 1);
      return 1.0;
    });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000);
    EXPECT_EQ(*std::min_element(visits.begin(), visits.end()), 1);
    EXPECT_EQ(*std::max_element(visits.begin(), visits.end()), 1);
  }
}

TEST(Device, CycleAccountingSumsBodyCosts) {
  Device dev(tiny_spec(1 << 20, 8));
  const auto stats =
      dev.launch("cost", 100, Assignment::kRoundRobin,
                 [](std::size_t i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(stats.total_cycles, 99.0 * 100.0 / 2.0);
  EXPECT_EQ(stats.cu_cycles.size(), 8u);
  EXPECT_EQ(stats.num_items, 100u);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

TEST(Device, RoundRobinBalancesSortedCosts) {
  // Costs sorted descending (the L3 precondition): round-robin dealing
  // should be far more even than blocked chunks.
  Device dev(tiny_spec(1 << 20, 4));
  const std::size_t n = 400;
  auto cost = [](std::size_t i) {
    return static_cast<double>(1000 - i);  // descending
  };
  const auto rr = dev.launch("rr", n, Assignment::kRoundRobin, cost);
  const auto blk = dev.launch("blk", n, Assignment::kBlocked, cost);
  EXPECT_LT(rr.load_uniformity(), 1.01);
  EXPECT_GT(blk.load_uniformity(), rr.load_uniformity());
}

TEST(Device, LoadUniformityIsMaxOverAverage) {
  Device dev(tiny_spec(1 << 20, 2));
  // 2 CUs, blocked: CU0 gets items 0..4 (cost 0), CU1 items 5..9 (cost 10).
  const auto stats = dev.launch("skew", 10, Assignment::kBlocked,
                                [](std::size_t i) {
                                  return i < 5 ? 0.0 : 10.0;
                                });
  EXPECT_DOUBLE_EQ(stats.max_cycles, 50.0);
  EXPECT_DOUBLE_EQ(stats.total_cycles, 50.0);
  EXPECT_DOUBLE_EQ(stats.load_uniformity(), 2.0);
}

TEST(Device, EmptyLaunchIsWellDefined) {
  Device dev(tiny_spec());
  const auto stats = dev.launch("noop", 0, Assignment::kRoundRobin,
                                [](std::size_t) { return 1.0; });
  EXPECT_EQ(stats.num_items, 0u);
  EXPECT_DOUBLE_EQ(stats.total_cycles, 0.0);
  EXPECT_DOUBLE_EQ(stats.load_uniformity(), 1.0);
}

TEST(Device, MoreCusThanItems) {
  Device dev(tiny_spec(1 << 20, 64));
  const auto stats = dev.launch("few", 3, Assignment::kBlocked,
                                [](std::size_t) { return 2.0; });
  EXPECT_DOUBLE_EQ(stats.total_cycles, 6.0);
}

TEST(Device, KernelAccumAggregatesAcrossLaunches) {
  Device dev(tiny_spec());
  for (int i = 0; i < 3; ++i)
    dev.launch("sweep", 10, Assignment::kRoundRobin,
               [](std::size_t) { return 1.0; });
  dev.launch("trace", 5, Assignment::kRoundRobin,
             [](std::size_t) { return 4.0; });
  const auto accum = dev.kernel_accum();
  EXPECT_EQ(accum.at("sweep").launches, 3u);
  EXPECT_EQ(accum.at("sweep").items, 30u);
  EXPECT_DOUBLE_EQ(accum.at("sweep").total_cycles, 30.0);
  EXPECT_DOUBLE_EQ(accum.at("trace").total_cycles, 20.0);
  EXPECT_GT(dev.modeled_seconds_total(), 0.0);
}

TEST(Device, AllocGoesThroughArena) {
  Device dev(tiny_spec(1024));
  auto buf = dev.alloc<float>("track_flux", 64);
  EXPECT_EQ(dev.memory().used(), 64 * sizeof(float));
  EXPECT_THROW(dev.alloc<float>("too_big", 100000), DeviceOutOfMemory);
}

TEST(Device, DmaAccountsBothEnds) {
  Device a(tiny_spec()), b(tiny_spec());
  const double secs = a.dma_copy_to(b, 1 << 20);
  EXPECT_GT(secs, 0.0);
  EXPECT_EQ(a.dma_bytes_out(), std::uint64_t{1} << 20);
  EXPECT_EQ(b.dma_bytes_in(), std::uint64_t{1} << 20);
  EXPECT_EQ(a.dma_bytes_in(), 0u);
}

TEST(Device, AtomicAddConcurrencySafety) {
  // All items hammer one accumulator; total must be exact.
  Device dev(tiny_spec(1 << 20, 16));
  double acc = 0.0;
  dev.launch("atomics", 10000, Assignment::kRoundRobin,
             [&](std::size_t) {
               device_atomic_add(acc, 1.0);
               return 1.0;
             });
  EXPECT_DOUBLE_EQ(acc, 10000.0);
}

TEST(Device, LaunchExceptionPropagates) {
  Device dev(tiny_spec());
  EXPECT_THROW(dev.launch("boom", 10, Assignment::kRoundRobin,
                          [](std::size_t i) -> double {
                            if (i == 7) fail<SolverError>("kernel fault");
                            return 1.0;
                          }),
               SolverError);
  // Device remains usable after a failed launch.
  EXPECT_NO_THROW(dev.launch("ok", 10, Assignment::kRoundRobin,
                             [](std::size_t) { return 1.0; }));
}

}  // namespace
}  // namespace antmoc::gpusim
