#include <gtest/gtest.h>

#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "util/error.h"

namespace antmoc::models {
namespace {

TEST(C5G7Model, PinCellStructure) {
  const auto model = build_pin_cell(3, 6.0);
  EXPECT_EQ(model.geometry.num_radial_regions(), 2);
  EXPECT_EQ(model.geometry.num_axial_layers(), 3);
  EXPECT_EQ(model.geometry.boundary(Face::kXMin),
            BoundaryType::kReflective);
  EXPECT_EQ(model.geometry.boundary(Face::kZMax),
            BoundaryType::kReflective);
  EXPECT_DOUBLE_EQ(model.geometry.bounds().width_x(), 1.26);
}

TEST(C5G7Model, FullCoreGeometryShape) {
  C5G7Options opt;  // 17x17 benchmark assemblies
  const auto model = build_core(opt);
  const auto& g = model.geometry;
  EXPECT_NEAR(g.bounds().width_x(), 64.26, 1e-9);
  EXPECT_NEAR(g.bounds().width_y(), 64.26, 1e-9);
  EXPECT_NEAR(g.bounds().width_z(), 64.26, 1e-9);
  // 4 fueled assemblies x 289 pins x 2 regions + 5 reflector regions,
  // but identical pins share universes only per material — instances are
  // distinct regions:
  EXPECT_EQ(g.num_radial_regions(), 4 * 289 * 2 + 5);
  // 3 fuel zones x 1 layer + 1 reflector layer by default.
  EXPECT_EQ(g.num_zones(), 4);
  EXPECT_EQ(g.boundary(Face::kXMin), BoundaryType::kReflective);
  EXPECT_EQ(g.boundary(Face::kXMax), BoundaryType::kVacuum);
  EXPECT_EQ(g.boundary(Face::kZMin), BoundaryType::kReflective);
  EXPECT_EQ(g.boundary(Face::kZMax), BoundaryType::kVacuum);
}

TEST(C5G7Model, CoreAssemblyLayoutMatchesFig6) {
  const auto model = build_core({});
  const auto& g = model.geometry;
  const double w = 21.42;  // assembly width
  // Pin at each assembly center (fission chamber everywhere fueled).
  auto material_at = [&](double x, double y) {
    return g.find_radial({x, y}).material;
  };
  // Assembly centers: inner UO2 (0,0), MOX (1,0) & (0,1), UO2 (1,1),
  // reflector column/row at index 2.
  EXPECT_EQ(material_at(0.5 * w, 0.5 * w), c5g7::kFissionChamber);
  EXPECT_EQ(material_at(2.5 * w, 0.5 * w), c5g7::kModerator);  // reflector
  EXPECT_EQ(material_at(0.5 * w, 2.5 * w), c5g7::kModerator);
  // Fuel pin just off-center distinguishes UO2 vs MOX assemblies.
  EXPECT_EQ(material_at(0.5 * w + 1.26, 0.5 * w), c5g7::kUO2);
  EXPECT_EQ(material_at(1.5 * w + 1.26, 0.5 * w), c5g7::kMOX87);
  EXPECT_EQ(material_at(0.5 * w + 1.26, 1.5 * w), c5g7::kMOX87);
  EXPECT_EQ(material_at(1.5 * w + 1.26, 1.5 * w), c5g7::kUO2);
}

TEST(C5G7Model, MoxEnrichmentZoning) {
  const auto model = build_core({});
  const auto& g = model.geometry;
  const double w = 21.42;
  // MOX assembly at (1, 0): outer ring 4.3%, next band 7.0%, center 8.7%.
  const double x0 = w, y0 = 0.0;
  auto pin_center = [&](int i, int j) {
    return Point2{x0 + (i + 0.5) * 1.26, y0 + (j + 0.5) * 1.26};
  };
  EXPECT_EQ(g.find_radial(pin_center(0, 0)).material, c5g7::kMOX43);
  EXPECT_EQ(g.find_radial(pin_center(16, 16)).material, c5g7::kMOX43);
  EXPECT_EQ(g.find_radial(pin_center(1, 1)).material, c5g7::kMOX70);
  EXPECT_EQ(g.find_radial(pin_center(8, 4)).material, c5g7::kMOX87);
  // Corner of the central zone is cut back to 7.0%.
  EXPECT_EQ(g.find_radial(pin_center(4, 4)).material, c5g7::kMOX70);
}

TEST(C5G7Model, GuideTubesPresentIn17x17) {
  const auto model = build_core({});
  const auto& g = model.geometry;
  // Guide tube at (row 2, col 5) of the inner UO2 assembly -> alias id 8.
  const Point2 gt{(5 + 0.5) * 1.26, (2 + 0.5) * 1.26};
  EXPECT_EQ(g.find_radial(gt).material, 8);
  // Same lattice position in the outer UO2 assembly keeps the plain id.
  const Point2 gt_outer{21.42 + (5 + 0.5) * 1.26, 21.42 + (2 + 0.5) * 1.26};
  EXPECT_EQ(g.find_radial(gt_outer).material, c5g7::kGuideTube);
}

TEST(C5G7Model, UnroddedReflectorZoneFloodsFuel) {
  const auto model = build_core({});
  const auto& g = model.geometry;
  const int fuel_region = g.find_radial({0.5 * 21.42 + 1.26,
                                         0.5 * 21.42}).region;
  const int top_layer = g.num_axial_layers() - 1;
  EXPECT_EQ(g.fsr_material(g.fsr_id(fuel_region, 0)), c5g7::kUO2);
  EXPECT_EQ(g.fsr_material(g.fsr_id(fuel_region, top_layer)),
            c5g7::kModerator);
}

TEST(C5G7Model, RoddedAInsertsRodsInInnerUo2Only) {
  C5G7Options opt;
  opt.config = RodConfig::kRoddedA;
  const auto model = build_core(opt);
  const auto& g = model.geometry;
  const Point2 gt_inner{(5 + 0.5) * 1.26, (2 + 0.5) * 1.26};
  const Point2 gt_mox{21.42 + (5 + 0.5) * 1.26, (2 + 0.5) * 1.26};
  const int inner = g.find_radial(gt_inner).region;
  const int mox = g.find_radial(gt_mox).region;
  const int top_layer = g.num_axial_layers() - 1;
  const int upper_fuel_layer = 2;  // third fuel zone with 1 layer each
  EXPECT_EQ(g.fsr_material(g.fsr_id(inner, top_layer)), c5g7::kControlRod);
  EXPECT_EQ(g.fsr_material(g.fsr_id(inner, upper_fuel_layer)),
            c5g7::kControlRod);
  EXPECT_EQ(g.fsr_material(g.fsr_id(inner, 0)), 8);  // withdrawn below
  EXPECT_NE(g.fsr_material(g.fsr_id(mox, top_layer)), c5g7::kControlRod);
}

TEST(C5G7Model, RoddedBInsertsDeeperAndIntoMox) {
  C5G7Options opt;
  opt.config = RodConfig::kRoddedB;
  const auto model = build_core(opt);
  const auto& g = model.geometry;
  const Point2 gt_inner{(5 + 0.5) * 1.26, (2 + 0.5) * 1.26};
  const Point2 gt_mox{21.42 + (5 + 0.5) * 1.26, (2 + 0.5) * 1.26};
  const int inner = g.find_radial(gt_inner).region;
  const int mox = g.find_radial(gt_mox).region;
  EXPECT_EQ(g.fsr_material(g.fsr_id(inner, 1)), c5g7::kControlRod);
  EXPECT_EQ(g.fsr_material(g.fsr_id(inner, 0)), 8);
  EXPECT_EQ(g.fsr_material(g.fsr_id(mox, 2)), c5g7::kControlRod);
  EXPECT_EQ(g.fsr_material(g.fsr_id(mox, 1)), 9);
}

TEST(C5G7Model, ScaledCoreKeepsStructure) {
  C5G7Options opt;
  opt.pins_per_assembly = 5;
  opt.height_scale = 0.1;
  const auto model = build_core(opt);
  const auto& g = model.geometry;
  EXPECT_NEAR(g.bounds().width_x(), 3 * 5 * 1.26, 1e-9);
  EXPECT_NEAR(g.bounds().width_z(), 6.426, 1e-9);
  EXPECT_EQ(g.num_radial_regions(), 4 * 25 * 2 + 5);
  C5G7Options bad;
  bad.pins_per_assembly = 4;
  EXPECT_THROW(build_core(bad), Error);
}

TEST(C5G7Model, AssemblyBuilderInfiniteLattice) {
  C5G7Options opt;
  opt.pins_per_assembly = 17;
  const auto model = build_assembly(opt);
  EXPECT_EQ(model.geometry.boundary(Face::kXMax),
            BoundaryType::kReflective);
  EXPECT_EQ(model.geometry.num_radial_regions(), 289 * 2);
}

TEST(C5G7Model, MaterialsIncludeAliases) {
  const auto model = build_core({});
  ASSERT_EQ(model.materials.size(), 10u);  // 8 benchmark + 2 aliases
  EXPECT_EQ(model.materials[8].name(), "GuideTube");
  EXPECT_EQ(model.materials[9].name(), "GuideTube");
}

TEST(C5G7Model, PinPowersLocateFuelColumns) {
  const auto model = build_pin_cell(2, 2.0);
  const auto& g = model.geometry;
  std::vector<double> rate(g.num_fsrs(), 0.0), vol(g.num_fsrs(), 1.0);
  const int fuel = g.find_radial({0.63, 0.63}).region;
  rate[g.fsr_id(fuel, 0)] = 2.0;
  rate[g.fsr_id(fuel, 1)] = 3.0;
  const auto power = pin_powers(g, rate, vol, 1, 1);
  ASSERT_EQ(power.size(), 1u);
  EXPECT_DOUBLE_EQ(power[0], 5.0);
}

}  // namespace
}  // namespace antmoc::models
