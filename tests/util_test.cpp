#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>

#include "util/cli.h"
#include "util/config.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

namespace antmoc {
namespace {

// ---------------------------------------------------------------- Config ---

TEST(Config, ParsesFlatKeyValues) {
  const auto cfg = Config::parse("alpha: 1\nbeta: two\ngamma: 3.5\n");
  EXPECT_EQ(cfg.get_int("alpha"), 1);
  EXPECT_EQ(cfg.get_string("beta"), "two");
  EXPECT_DOUBLE_EQ(cfg.get_double("gamma"), 3.5);
}

TEST(Config, ParsesSections) {
  const auto cfg = Config::parse(
      "track:\n"
      "  azim: 8\n"
      "  spacing: 0.5\n"
      "domain: 2\n");
  EXPECT_EQ(cfg.get_int("track.azim"), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("track.spacing"), 0.5);
  EXPECT_EQ(cfg.get_int("domain"), 2);
}

TEST(Config, SectionEndsAtUnindentedKey) {
  const auto cfg = Config::parse(
      "a:\n  x: 1\nb: 2\nc:\n  x: 3\n");
  EXPECT_EQ(cfg.get_int("a.x"), 1);
  EXPECT_EQ(cfg.get_int("b"), 2);
  EXPECT_EQ(cfg.get_int("c.x"), 3);
  EXPECT_FALSE(cfg.contains("x"));
}

TEST(Config, StripsCommentsAndBlanks) {
  const auto cfg = Config::parse(
      "# header comment\n"
      "\n"
      "key: 7   # trailing comment\n");
  EXPECT_EQ(cfg.get_int("key"), 7);
}

TEST(Config, QuotedStringsKeepHashes) {
  const auto cfg = Config::parse("name: \"a # b\"\n");
  EXPECT_EQ(cfg.get_string("name"), "a # b");
}

TEST(Config, ParsesLists) {
  const auto cfg = Config::parse("dims: [2, 2, 2]\nw: [0.5, 1.5]\n");
  EXPECT_EQ(cfg.get_int_list("dims"), (std::vector<long>{2, 2, 2}));
  EXPECT_EQ(cfg.get_double_list("w"), (std::vector<double>{0.5, 1.5}));
}

TEST(Config, ParsesBooleans) {
  const auto cfg = Config::parse("a: true\nb: off\nc: yes\nd: 0\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
}

TEST(Config, MissingKeyThrows) {
  const auto cfg = Config::parse("a: 1\n");
  EXPECT_THROW(cfg.get_int("nope"), ConfigError);
  EXPECT_THROW(cfg.get_string("nope"), ConfigError);
}

TEST(Config, DefaultsReturnedForMissingKeys) {
  const auto cfg = Config::parse("a: 1\n");
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_EQ(cfg.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 2.5), 2.5);
}

TEST(Config, DefaultsStillRejectMalformedPresentValues) {
  const auto cfg = Config::parse("a: not_a_number\n");
  EXPECT_THROW(cfg.get_int("a", 42), ConfigError);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("just a line without separator\n"), ConfigError);
}

TEST(Config, BadTypeConversionThrows) {
  const auto cfg = Config::parse("a: 1.5x\nb: [1, two]\n");
  EXPECT_THROW(cfg.get_double("a"), ConfigError);
  EXPECT_THROW(cfg.get_int_list("b"), ConfigError);
}

TEST(Config, SetOverridesValue) {
  auto cfg = Config::parse("a: 1\n");
  cfg.set("a", "9");
  cfg.set("fresh", "x");
  EXPECT_EQ(cfg.get_int("a"), 9);
  EXPECT_EQ(cfg.get_string("fresh"), "x");
}

TEST(Config, KeysAreSorted) {
  const auto cfg = Config::parse("b: 1\na: 2\n");
  EXPECT_EQ(cfg.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/path/config.yaml"), ConfigError);
}

// ------------------------------------------------------------------- CLI ---

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4", "--flag"};
  const auto cfg = parse_cli(5, argv);
  EXPECT_EQ(cfg.get_int("alpha"), 3);
  EXPECT_EQ(cfg.get_int("beta"), 4);
  EXPECT_TRUE(cfg.get_bool("flag"));
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(parse_cli(2, argv), ConfigError);
}

TEST(Cli, FlagOverridesConfigFile) {
  const std::string path = ::testing::TempDir() + "/antmoc_cli_test.yaml";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("alpha: 1\nbeta: 2\n", f);
    fclose(f);
  }
  const std::string arg = "--config=" + path;
  const char* argv[] = {"prog", arg.c_str(), "--beta=9"};
  const auto cfg = parse_cli(3, argv);
  EXPECT_EQ(cfg.get_int("alpha"), 1);
  EXPECT_EQ(cfg.get_int("beta"), 9);
}

// ------------------------------------------------------------------- RNG ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, MeanIsNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

// ----------------------------------------------------------------- Timer ---

TEST(Timer, AccumulatesAcrossStartStop) {
  Timer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(Timer, RestartWhileRunningBanksInFlightInterval) {
  // Regression: start() on a running timer used to overwrite the start
  // point, silently discarding the interval measured so far.
  using clock = std::chrono::steady_clock;
  const auto spin_ms = [](int ms) {
    const auto until = clock::now() + std::chrono::milliseconds(ms);
    while (clock::now() < until) {
    }
  };
  Timer t;
  t.start();
  spin_ms(10);
  t.start();  // must bank the first ~10 ms, not drop it
  spin_ms(10);
  t.stop();
  EXPECT_GE(t.seconds(), 0.018);
}

TEST(TimerRegistry, AccumulatesNamedBuckets) {
  auto& reg = TimerRegistry::instance();
  reg.clear();
  reg.add("sweep", 1.0);
  reg.add("sweep", 0.5);
  reg.add("trace", 0.25);
  EXPECT_DOUBLE_EQ(reg.seconds("sweep"), 1.5);
  EXPECT_DOUBLE_EQ(reg.seconds("trace"), 0.25);
  EXPECT_DOUBLE_EQ(reg.seconds("unknown"), 0.0);
  const std::string report = reg.report();
  EXPECT_NE(report.find("sweep"), std::string::npos);
  EXPECT_NE(report.find("trace"), std::string::npos);
}

TEST(TimerRegistry, ScopedTimerRecords) {
  auto& reg = TimerRegistry::instance();
  reg.clear();
  { ScopedTimer probe("scoped_bucket"); }
  EXPECT_GE(reg.seconds("scoped_bucket"), 0.0);
  EXPECT_NE(reg.report().find("scoped_bucket"), std::string::npos);
}

// ----------------------------------------------------------------- Error ---

TEST(Error, RequirePassesOnTrue) { EXPECT_NO_THROW(require(true, "ok")); }

TEST(Error, RequireThrowsWithLocation) {
  try {
    require(false, "broken invariant");
    FAIL() << "require(false) did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(Error, FailThrowsRequestedType) {
  EXPECT_THROW(fail<ConfigError>("x"), ConfigError);
  EXPECT_THROW(fail<GeometryError>("x"), GeometryError);
  EXPECT_THROW(fail<DeviceOutOfMemory>("x"), DeviceOutOfMemory);
  // All error types remain catchable as the base Error.
  EXPECT_THROW(fail<SolverError>("x"), Error);
}

}  // namespace
}  // namespace antmoc
