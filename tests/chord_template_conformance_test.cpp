/// \file chord_template_conformance_test.cpp
/// Conformance matrix for chord-classified OTF segmentation (DESIGN.md
/// §9): for uniform, non-uniform, and mixed-commensurability axial
/// zonings, template expansion must be bitwise identical to the generic
/// `TrackStacks::walk()` for every track in both sweep directions; solver
/// results must be bitwise identical with templates on and off; and the
/// device arena must charge "chord_templates" with the same OOM
/// auto-fallback ladder as the other hot-path buffers.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geometry/builder.h"
#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/gpu_solver.h"
#include "track/chord_template.h"
#include "util/error.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

/// A water box with caller-chosen axial zoning — the smallest geometry
/// that still exercises the zone/lattice commensurability analysis.
models::C5G7Model water_box(
    const std::vector<std::array<double, 3>>& zones) {
  GeometryBuilder b;
  const int u = b.add_universe("water");
  b.add_cell(u, "w", c5g7::kModerator, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 2.0;
  bounds.y_max = 2.0;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  for (const auto& z : zones)
    b.add_axial_zone(z[0], z[1], static_cast<int>(z[2]));
  return {b.build(), c5g7::materials()};
}

struct Seg {
  long fsr;
  double length;
  bool operator==(const Seg& o) const {
    // Bitwise on length: the template entries must reproduce the generic
    // walk's exact doubles, not merely close ones.
    return fsr == o.fsr && length == o.length;
  }
};

std::vector<Seg> collect_generic(const TrackStacks& stacks, long id,
                                 bool forward) {
  std::vector<Seg> out;
  stacks.for_each_segment(
      id, forward, [&](long fsr, double len) { out.push_back({fsr, len}); });
  return out;
}

/// Asserts the full conformance matrix on one problem: every track, both
/// directions, template expansion bitwise equal to the generic walk, and
/// the construction-byproduct segment counts correct. Returns the cache
/// coverage so callers can assert eligibility expectations.
double check_conformance(const Problem& p) {
  const ChordTemplateCache cache(p.stacks);
  EXPECT_EQ(cache.num_tracks(), p.stacks.num_tracks());
  long eligible = 0;
  long eligible_segments = 0;
  long total_segments = 0;
  for (long id = 0; id < p.stacks.num_tracks(); ++id) {
    const std::vector<Seg> fwd = collect_generic(p.stacks, id, true);
    EXPECT_EQ(cache.segment_counts()[id], static_cast<long>(fwd.size()))
        << id;
    total_segments += static_cast<long>(fwd.size());
    for (bool forward : {true, false}) {
      const std::vector<Seg> ref =
          forward ? fwd : collect_generic(p.stacks, id, false);
      std::vector<Seg> got;
      const bool used = cache.for_each_segment(
          id, forward,
          [&](long fsr, double len) { got.push_back({fsr, len}); });
      EXPECT_EQ(used, cache.eligible(id)) << id;
      if (!used) continue;
      EXPECT_EQ(got.size(), ref.size())
          << "track " << id << (forward ? " fwd" : " bwd");
      if (got.size() != ref.size()) continue;
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_TRUE(got[i] == ref[i])
            << "track " << id << (forward ? " fwd" : " bwd") << " seg " << i
            << ": (" << got[i].fsr << ", " << got[i].length << ") vs ("
            << ref[i].fsr << ", " << ref[i].length << ")";
    }
    if (cache.eligible(id)) {
      ++eligible;
      eligible_segments += static_cast<long>(fwd.size());
    }
  }
  EXPECT_EQ(cache.num_eligible(), eligible);
  EXPECT_EQ(cache.total_segments(), total_segments);
  EXPECT_EQ(cache.eligible_segments(), eligible_segments);
  EXPECT_GT(cache.bytes(), 0u);
  return cache.coverage();
}

// ----------------------------------------------- classification matrix ---

TEST(ChordTemplateConformance, UniformZonesBitwiseAndHighCoverage) {
  // dz = 0.5, layer h = 1.0: c = 2 lattice steps per layer — the common
  // commensurate case. Unclipped tracks must classify.
  Problem p(models::build_pin_cell(4, 4.0), 4, 0.4, 2, 0.5);
  const double coverage = check_conformance(p);
  EXPECT_GT(coverage, 0.0);
  const ChordTemplateCache cache(p.stacks);
  EXPECT_GT(cache.num_eligible(), 0);
  EXPECT_LT(cache.num_eligible(), p.stacks.num_tracks())
      << "boundary-clipped tracks must fall back";
}

TEST(ChordTemplateConformance, NonUniformCommensurateZonesBitwise) {
  // Two zones of different layer thickness (h = 1 and h = 2), each
  // commensurate with dz = 0.5. Cross-zone tracks fall back; tracks
  // confined to one zone may classify. Bitwise identity holds throughout.
  Problem p(water_box({{0.0, 3.0, 3}, {3.0, 5.0, 1}}), 4, 0.4, 2, 0.5);
  const double coverage = check_conformance(p);
  EXPECT_GE(coverage, 0.0);
}

TEST(ChordTemplateConformance, MixedCommensurabilityZonesBitwise) {
  // Zone 0 is commensurate (h = dz = 0.1); zones 1 and 2 have layer
  // thicknesses 0.427 and 0.073 whose ratios to dz reduce to
  // denominators > 64, so no chord period <= 64 exists — every track
  // touching them must take the generic fallback, bitwise-identically.
  Problem p(water_box({{0.0, 0.5, 5}, {0.5, 0.927, 1}, {0.927, 1.0, 1}}),
            4, 0.4, 2, 0.1);
  const double coverage = check_conformance(p);
  EXPECT_GE(coverage, 0.0);
  EXPECT_LT(coverage, 1.0);
}

TEST(ChordTemplateConformance, IncommensurateOnlyZonesAllFallBack) {
  // 67 z-intercepts against 71 layers (coprime, both beyond the period
  // bound): c * (wz/67) = q * (wz/71) forces 71c = 67q, whose minimal
  // solution c = 67 exceeds the 64-step search window — no chord period
  // exists and every track must take the generic fallback.
  Problem p(water_box({{0.0, 1.0, 71}}), 4, 0.6, 2, 1.0 / 67.0);
  const ChordTemplateCache cache(p.stacks);
  EXPECT_EQ(cache.num_eligible(), 0);
  EXPECT_EQ(cache.coverage(), 0.0);
  check_conformance(p);
}

// ------------------------------------------------- solver bit identity ---

TEST(ChordTemplateConformance, CpuSolveBitwiseIdenticalTemplatesOnOff) {
  Problem p(models::build_pin_cell(4, 4.0), 4, 0.4, 2, 0.5);
  SolveOptions fixed;
  fixed.fixed_iterations = 5;

  CpuSolver with(p.stacks, p.model.materials, 2, TemplateMode::kAuto);
  CpuSolver without(p.stacks, p.model.materials, 2, TemplateMode::kOff);
  const auto rw = with.solve(fixed);
  const auto ro = without.solve(fixed);

  EXPECT_EQ(rw.k_eff, ro.k_eff);
  EXPECT_EQ(rw.residual, ro.residual);
  const auto& fw = with.fsr().scalar_flux();
  const auto& fo = without.fsr().scalar_flux();
  ASSERT_EQ(fw.size(), fo.size());
  for (std::size_t i = 0; i < fw.size(); ++i) EXPECT_EQ(fw[i], fo[i]) << i;
}

TEST(ChordTemplateConformance, GpuSolveBitwiseIdenticalTemplatesOnOff) {
  Problem p(models::build_pin_cell(4, 4.0), 4, 0.4, 2, 0.5);
  SolveOptions fixed;
  fixed.fixed_iterations = 5;
  GpuSolverOptions opts;
  opts.resident_budget_bytes = std::size_t{1} << 20;

  std::vector<double> flux[2];
  SolveResult r[2];
  const TemplateMode modes[2] = {TemplateMode::kForce, TemplateMode::kOff};
  for (int i = 0; i < 2; ++i) {
    gpusim::Device device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    opts.templates = modes[i];
    GpuSolver solver(p.stacks, p.model.materials, device, opts);
    EXPECT_EQ(solver.templates_active(), modes[i] == TemplateMode::kForce);
    r[i] = solver.solve(fixed);
    flux[i] = solver.fsr().scalar_flux();
  }
  EXPECT_EQ(r[0].k_eff, r[1].k_eff);
  ASSERT_EQ(flux[0].size(), flux[1].size());
  for (std::size_t i = 0; i < flux[0].size(); ++i)
    EXPECT_EQ(flux[0][i], flux[1][i]) << i;
}

// --------------------------------------------------- arena accounting ---

TEST(ChordTemplateConformance, ArenaChargedAndOomFallbackIdentical) {
  Problem p(models::build_pin_cell(4, 4.0), 4, 0.4, 2, 0.5);
  SolveOptions fixed;
  fixed.fixed_iterations = 4;
  GpuSolverOptions opts;
  opts.resident_budget_bytes = std::size_t{1} << 20;
  // One tally strategy everywhere: the tight arena cannot privatize, and
  // the roomy-vs-fallback comparison below is bitwise.
  opts.privatize = PrivatizeMode::kOff;

  // Big arena: templates active and visibly charged.
  gpusim::Device big(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  opts.templates = TemplateMode::kAuto;
  GpuSolver roomy(p.stacks, p.model.materials, big, opts);
  ASSERT_TRUE(roomy.templates_active());
  const auto breakdown = big.memory().breakdown();
  ASSERT_TRUE(breakdown.count("chord_templates"));
  EXPECT_EQ(breakdown.at("chord_templates"),
            ChordTemplateCache(p.stacks).bytes());
  const auto r_roomy = roomy.solve(fixed);

  // Tight arena: fits the mandatory footprint but none of the optional
  // hot-path buffers — kAuto must fall back to the generic walk.
  std::size_t base = 0;
  {
    gpusim::Device probe(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    GpuSolverOptions off = opts;
    off.templates = TemplateMode::kOff;
    off.privatize = PrivatizeMode::kOff;
    GpuSolver solver(p.stacks, p.model.materials, probe, off);
    base = probe.memory().used();
  }
  const auto tight = gpusim::DeviceSpec::scaled(base + 1024, 8);

  gpusim::Device tight_dev(tight);
  GpuSolverOptions tight_opts = opts;
  tight_opts.privatize = PrivatizeMode::kOff;
  GpuSolver fallback(p.stacks, p.model.materials, tight_dev, tight_opts);
  EXPECT_FALSE(fallback.templates_active());
  EXPECT_FALSE(tight_dev.memory().breakdown().count("chord_templates"));
  const auto r_fallback = fallback.solve(fixed);

  // The fallback is a silent performance change, never a results change.
  EXPECT_EQ(r_roomy.k_eff, r_fallback.k_eff);
  const auto& ff = fallback.fsr().scalar_flux();
  const auto& fr = roomy.fsr().scalar_flux();
  ASSERT_EQ(ff.size(), fr.size());
  for (std::size_t i = 0; i < ff.size(); ++i) EXPECT_EQ(fr[i], ff[i]) << i;

  // kForce converts the fallback into the degradation-ladder signal.
  gpusim::Device force_dev(tight);
  GpuSolverOptions force_opts = tight_opts;
  force_opts.templates = TemplateMode::kForce;
  EXPECT_THROW(GpuSolver(p.stacks, p.model.materials, force_dev, force_opts),
               DeviceOutOfMemory);
}

}  // namespace
}  // namespace antmoc
