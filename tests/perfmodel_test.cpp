#include <gtest/gtest.h>

#include <cmath>

#include "models/c5g7_model.h"
#include "perfmodel/layout.h"
#include "perfmodel/perfmodel.h"
#include "solver/gpu_solver.h"
#include "util/error.h"

namespace antmoc::perf {
namespace {

struct Laydown {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  explicit Laydown(double spacing, double dz = 0.5, int nazim = 4,
                   int npolar = 2)
      : model(models::build_pin_cell(2, 2.0)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(),
            {LinkKind::kReflective, LinkKind::kReflective,
             LinkKind::kReflective, LinkKind::kReflective}),
        stacks((gen.trace(model.geometry), gen), model.geometry, 0.0, 2.0,
               dz) {}
};

TEST(PerfModel, Eq2TrackCountIsExact) {
  const Laydown l(0.2);
  EXPECT_EQ(predict_num_tracks_2d(l.quad), l.gen.num_tracks());
}

TEST(PerfModel, Eq3TrackCountIsExact) {
  for (double dz : {1.0, 0.5, 0.25}) {
    const Laydown l(0.2, dz);
    EXPECT_EQ(predict_num_tracks_3d(l.gen, 0.0, 2.0, dz),
              l.stacks.num_tracks())
        << "dz=" << dz;
  }
}

TEST(PerfModel, Eq4SegmentPredictionWithinPaperBand) {
  // Calibrate on a small-but-dense sample, predict for finer track
  // laydowns on the same geometry; the paper's Fig. 8 reports relative
  // error within 1.1%. (A too-coarse sample biases the ratio — the paper's
  // method requires "relatively dense" rays for the linear regime.)
  const Laydown sample(0.05);
  const auto ratios = SegmentRatios::calibrate(sample.gen, sample.stacks);
  for (double spacing : {0.025, 0.016}) {
    const Laydown fine(spacing);
    const long predicted_2d =
        ratios.predict_segments_2d(fine.gen.num_tracks());
    const long measured_2d = fine.gen.num_segments();
    EXPECT_NEAR(double(predicted_2d) / measured_2d, 1.0, 0.05)
        << "2D spacing=" << spacing;

    const long predicted_3d =
        ratios.predict_segments_3d(fine.stacks.num_tracks());
    const long measured_3d = fine.stacks.total_segments();
    EXPECT_NEAR(double(predicted_3d) / measured_3d, 1.0, 0.05)
        << "3D spacing=" << spacing;
  }
}

TEST(PerfModel, Eq5MemoryMatchesGpuSolverCharges) {
  const Laydown l(0.2);
  gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 28, 8));
  GpuSolverOptions gopts;
  gopts.policy = TrackPolicy::kExplicit;
  GpuSolver solver(l.stacks, l.model.materials, device, gopts);

  MemoryModel model;
  model.num_groups = 7;
  const auto predicted = model.predict(
      l.gen.num_tracks(), l.gen.num_segments(), l.stacks.num_tracks(),
      l.stacks.total_segments(), /*resident_fraction=*/1.0);

  const auto charged = device.memory().breakdown();
  EXPECT_EQ(predicted.tracks_2d, charged.at("2d_tracks"));
  EXPECT_EQ(predicted.segments_2d, charged.at("2d_segments"));
  EXPECT_EQ(predicted.tracks_3d, charged.at("3d_tracks"));
  EXPECT_EQ(predicted.segments_3d, charged.at("3d_segments"));
  EXPECT_EQ(predicted.track_fluxes, charged.at("track_fluxs"));
}

TEST(PerfModel, Eq5SegmentsDominateForRichGeometries) {
  // Table 3: 3D segments dominate (93.31% in the paper's full-core
  // configuration). The share is driven by segments per 3D track, i.e.
  // the geometric richness: a pin cell stays flux-dominated while a
  // multi-assembly core crosses dozens of regions per track.
  const Laydown pin(0.2, 0.5);
  MemoryModel model;
  const auto b_pin = model.predict(
      pin.gen.num_tracks(), pin.gen.num_segments(),
      pin.stacks.num_tracks(), pin.stacks.total_segments());

  models::C5G7Options opt;
  opt.pins_per_assembly = 5;
  opt.fuel_layers = 6;
  opt.reflector_layers = 2;
  opt.height_scale = 0.3;
  auto core_model = models::build_core(opt);
  const auto& g = core_model.geometry;
  const Quadrature quad(4, 0.2, g.bounds().width_x(),
                        g.bounds().width_y(), 2);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kVacuum,
                        LinkKind::kReflective, LinkKind::kVacuum});
  gen.trace(g);
  const TrackStacks stacks(gen, g, g.bounds().z_min, g.bounds().z_max,
                           1.0);
  const auto b_core =
      model.predict(gen.num_tracks(), gen.num_segments(),
                    stacks.num_tracks(), stacks.total_segments());

  EXPECT_GT(b_core.share(b_core.segments_3d),
            b_pin.share(b_pin.segments_3d));
  EXPECT_GT(b_core.share(b_core.segments_3d), 0.5);
}

TEST(PerfModel, Eq5ResidentFractionScalesSegmentTerm) {
  MemoryModel model;
  const auto full = model.predict(100, 1000, 10000, 1000000, 1.0);
  const auto half = model.predict(100, 1000, 10000, 1000000, 0.5);
  const auto none = model.predict(100, 1000, 10000, 1000000, 0.0);
  EXPECT_EQ(half.segments_3d * 2, full.segments_3d);
  EXPECT_EQ(none.segments_3d, 0u);
  EXPECT_EQ(none.tracks_3d, full.tracks_3d);
  EXPECT_THROW(model.predict(1, 1, 1, 1, 1.5), Error);
}

TEST(PerfModel, Eq6ComputationScalesWithPolicy) {
  EXPECT_DOUBLE_EQ(predict_sweep_cycles(1000, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(predict_sweep_cycles(1000, 0.0), 6000.0);
  // Manager at 35% residency recovers ~30% of the OTF overhead — the
  // paper's Fig. 9 observation.
  const double otf = predict_sweep_cycles(1000, 0.0);
  const double managed = predict_sweep_cycles(1000, 0.35);
  EXPECT_NEAR((otf - managed) / otf, 0.29, 0.03);
}

TEST(PerfModel, Eq7CommunicationBytes) {
  // communication = N3D * 2 directions * groups * 4 bytes.
  EXPECT_EQ(communication_bytes(100, 7), 100u * 2 * 7 * 4);
  EXPECT_EQ(communication_bytes(0, 7), 0u);
}

TEST(PerfModel, LayoutConstantsMatchRealStructSizes) {
  EXPECT_EQ(kSegment3DBytes, sizeof(Segment3D));
}

}  // namespace
}  // namespace antmoc::perf
