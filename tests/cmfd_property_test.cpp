/// \file cmfd_property_test.cpp
/// Property/fuzz suite for the CMFD tally and restriction machinery:
/// for *any* FSR -> cell map (seeded random maps over the arbitrary-map
/// CoarseMesh constructor), the tallied surface currents must satisfy the
/// per-cell telescoping identity against the sweep accumulator — the
/// invariant the removal correction is built on — and on a physically
/// flat-flux problem (homogenized infinite medium) the restrict ->
/// solve -> prolong cycle must be an identity up to solver precision.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "cmfd/cmfd.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "track/generator2d.h"
#include "track/track3d.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem small_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return Problem(models::build_core(opt), 4, 0.5, 2, 1.0);
}

// ------------------------------------------------- current conservation ----

/// For an arbitrary-map mesh every crossing tallies the per-cell boundary
/// slots, so the telescoping identity is exact per (cell, group): the sum
/// of the sweep accumulator over a cell's FSRs equals tallied inflow
/// minus outflow (both tallied from the identical angular fluxes of the
/// same sweep; only summation order differs).
void check_conservation(unsigned seed, int num_cells) {
  Problem p = small_problem();
  const Geometry& g = p.model.geometry;

  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, num_cells - 1);
  std::vector<int> map(g.num_fsrs());
  for (auto& c : map) c = pick(rng);

  cmfd::CmfdContext ctx(
      cmfd::CoarseMesh(g, num_cells, map), p.stacks,
      to_link_kind(g.boundary(Face::kZMin)),
      to_link_kind(g.boundary(Face::kZMax)));
  ASSERT_FALSE(ctx.mesh.grid());
  ASSERT_EQ(ctx.mesh.num_faces(), 0);

  CpuSolver solver(p.stacks, p.model.materials, 1);
  cmfd::CmfdOptions co;
  co.enable = true;
  co.start_iteration = 1000000;  // tally only; never prolong
  solver.enable_cmfd(co);
  solver.set_shared_cmfd_context(&ctx);
  SolveOptions opts;
  opts.fixed_iterations = 1;
  solver.solve(opts);

  const int G = solver.fsr().num_groups();
  const auto& accum = solver.fsr().accumulator();
  const auto& cur = solver.cmfd_accel()->merged_currents();
  ASSERT_EQ(static_cast<long>(cur.size()), ctx.mesh.num_slots() * G);

  std::vector<double> cell_accum(static_cast<std::size_t>(num_cells) * G,
                                 0.0);
  double scale = 0.0;
  for (long r = 0; r < g.num_fsrs(); ++r) {
    const long cb = static_cast<long>(map[r]) * G;
    for (int grp = 0; grp < G; ++grp) {
      cell_accum[cb + grp] += accum[r * G + grp];
      scale = std::max(scale, std::abs(accum[r * G + grp]));
    }
  }
  ASSERT_GT(scale, 0.0);
  for (int c = 0; c < num_cells; ++c) {
    const long in = ctx.mesh.boundary_in_slot(c) * G;
    const long out = ctx.mesh.boundary_out_slot(c) * G;
    for (int grp = 0; grp < G; ++grp) {
      const double net_in = cur[in + grp] - cur[out + grp];
      EXPECT_NEAR(cell_accum[static_cast<long>(c) * G + grp], net_in,
                  1e-9 * scale)
          << "seed " << seed << " cell " << c << " group " << grp;
    }
  }
}

TEST(CmfdProperty, RandomMapsConserveTalliedCurrents) {
  check_conservation(/*seed=*/1, /*num_cells=*/1);
  check_conservation(/*seed=*/2, /*num_cells=*/3);
  check_conservation(/*seed=*/3, /*num_cells=*/7);
  check_conservation(/*seed=*/4, /*num_cells=*/16);
}

// ------------------------------------------------ flat-flux fixed point ----

TEST(CmfdProperty, FlatFluxFixedPointIsPreservedUnderRandomMap) {
  // Homogenize the pin cell: every region gets the same (fissile)
  // material, all boundaries reflective — an infinite medium whose
  // converged scalar flux is spatially flat (up to the track-laydown
  // discretization ripple) and whose k is k_inf. At that fixed point
  // restriction gives phi0, the coarse operator is stationary at
  // (x = phi0, lambda = k), and prolongation is the identity — for ANY
  // cell map, including one with no faces at all.
  //
  // The identity is probed surgically: both solvers run the same fixed
  // iteration count (past the plain solve's ~2.8k-sweep convergence),
  // and the accelerated one fires exactly ONE coarse solve at the final
  // iteration. The two runs are bitwise identical up to that single
  // restrict -> solve -> prolong application, so any k or flux
  // difference is purely the prolongation's deviation from identity.
  // (From-scratch acceleration is deliberately not exercised here: a
  // faceless map gives the coarse operator no information to anchor
  // relative cell amplitudes, so away from the fixed point the
  // eigenproblem is degenerate in them and acceleration through it is
  // ill-posed — the grid meshes real configurations use always carry
  // face couplings.)
  const auto homogenize = [](models::C5G7Model m) {
    std::size_t f = 0;
    while (f < m.materials.size() && !m.materials[f].is_fissile()) ++f;
    const Material fuel = m.materials.at(f);
    for (auto& mat : m.materials) mat = fuel;
    return m;
  };

  constexpr int kSweeps = 3000;
  SolveOptions opts;
  opts.fixed_iterations = kSweeps;

  Problem plain_p(homogenize(models::build_pin_cell(2, 2.0)), 4, 0.4, 2,
                  0.5);
  CpuSolver plain(plain_p.stacks, plain_p.model.materials, 1);
  const SolveResult r0 = plain.solve(opts);

  Problem p(homogenize(models::build_pin_cell(2, 2.0)), 4, 0.4, 2, 0.5);
  const Geometry& g = p.model.geometry;
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> pick(0, 4);
  std::vector<int> map(g.num_fsrs());
  for (auto& c : map) c = pick(rng);
  cmfd::CmfdContext ctx(cmfd::CoarseMesh(g, 5, map), p.stacks,
                        to_link_kind(g.boundary(Face::kZMin)),
                        to_link_kind(g.boundary(Face::kZMax)));

  CpuSolver acc(p.stacks, p.model.materials, 1);
  cmfd::CmfdOptions co;
  co.enable = true;
  co.start_iteration = kSweeps;  // exactly one coarse solve, at the end
  acc.enable_cmfd(co);
  acc.set_shared_cmfd_context(&ctx);
  const SolveResult r1 = acc.solve(opts);

  // The one solve at the fixed point must be accepted cleanly (the
  // stationary start converges in a couple of outers) and prolonged.
  EXPECT_FALSE(acc.cmfd_accel()->degraded());
  EXPECT_EQ(acc.cmfd_accel()->accelerations(), 1);
  EXPECT_EQ(acc.cmfd_accel()->skips(), 0);

  // The fixed iteration count leaves a residual transient (distance to
  // the true limit is residual / (1 - dominance ratio), well above the
  // per-sweep residual for this slowly converging medium); the coarse
  // lambda estimates the limit, so the one prolongation can move k by up
  // to that remaining-transient scale — a few 1e-6 here — toward it.
  EXPECT_NEAR(r1.k_eff, r0.k_eff, 1e-5 * r0.k_eff);

  // Per-FSR flux: the prolongation ratios must all be 1 to solver
  // precision, i.e. the accelerated flux matches the plain flux far
  // inside the laydown ripple both runs share.
  const auto& flux0 = plain.fsr().scalar_flux();
  const auto& flux1 = acc.fsr().scalar_flux();
  ASSERT_EQ(flux0.size(), flux1.size());
  const int G = acc.fsr().num_groups();
  for (long r = 0; r < g.num_fsrs(); ++r) {
    for (int grp = 0; grp < G; ++grp) {
      const double v0 = flux0[r * G + grp];
      const double v1 = flux1[r * G + grp];
      ASSERT_GT(v0, 0.0) << "fsr " << r << " group " << grp;
      EXPECT_NEAR(v1 / v0, 1.0, 1e-5) << "fsr " << r << " group " << grp;
    }
  }
}

}  // namespace
}  // namespace antmoc
