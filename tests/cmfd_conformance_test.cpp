/// \file cmfd_conformance_test.cpp
/// CMFD conformance matrix (DESIGN.md §14): the accelerated answer must
/// not depend on how the sweep was organized — worker counts {1,2,4}
/// agree to the fork-join reduction tolerance, history vs event backends
/// are bitwise identical, host vs simulated device agree to solver
/// precision, engine warm jobs match cold one-shots bitwise (the shared
/// CmfdContext changes nothing), and a decomposed run both accelerates
/// and reproduces the single-domain answer to discretization accuracy.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "cmfd/cmfd.h"
#include "engine/session.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/domain_solver.h"
#include "solver/event_sweep.h"
#include "solver/gpu_solver.h"
#include "track/generator2d.h"
#include "track/track3d.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem gate_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 5;
  opt.fuel_layers = 3;
  opt.reflector_layers = 1;
  opt.height_scale = 0.15;
  return Problem(models::build_core(opt), 4, 0.3, 2, 0.75);
}

SolveOptions gate_options() {
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 2000;
  return opts;
}

cmfd::CmfdOptions cmfd_on() {
  cmfd::CmfdOptions co;
  co.enable = true;
  return co;
}

SolveResult run_cpu(unsigned workers, SweepBackend backend) {
  Problem problem = gate_problem();
  CpuSolver solver(problem.stacks, problem.model.materials, workers,
                   TemplateMode::kAuto, backend);
  solver.enable_cmfd(cmfd_on());
  const SolveResult r = solver.solve(gate_options());
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(solver.cmfd_accel()->degraded());
  EXPECT_GT(solver.cmfd_accel()->accelerations(), 0);
  return r;
}

// ------------------------------------------------------ sweep workers ------

TEST(CmfdConformance, WorkerCountsAgreeToReductionTolerance) {
  const SolveResult r1 = run_cpu(1, SweepBackend::kHistory);
  const SolveResult r2 = run_cpu(2, SweepBackend::kHistory);
  const SolveResult r4 = run_cpu(4, SweepBackend::kHistory);
  // Fork-join changes only the order of the per-worker tally merges; the
  // coarse solve sees currents that differ by double-rounding alone.
  EXPECT_NEAR(r2.k_eff, r1.k_eff, 1e-9);
  EXPECT_NEAR(r4.k_eff, r1.k_eff, 1e-9);
  EXPECT_EQ(r2.iterations, r1.iterations);
  EXPECT_EQ(r4.iterations, r1.iterations);
}

TEST(CmfdConformance, EventBackendBitwiseIdenticalToHistory) {
  Problem ph = gate_problem();
  CpuSolver hist(ph.stacks, ph.model.materials, 1, TemplateMode::kAuto,
                 SweepBackend::kHistory);
  hist.enable_cmfd(cmfd_on());
  const SolveResult rh = hist.solve(gate_options());

  Problem pe = gate_problem();
  CpuSolver ev(pe.stacks, pe.model.materials, 1, TemplateMode::kAuto,
               SweepBackend::kEvent);
  ev.enable_cmfd(cmfd_on());
  const SolveResult re = ev.solve(gate_options());

  EXPECT_EQ(re.k_eff, rh.k_eff);
  EXPECT_EQ(re.iterations, rh.iterations);
  EXPECT_EQ(re.residual, rh.residual);
  const auto& fh = hist.fsr().scalar_flux();
  const auto& fe = ev.fsr().scalar_flux();
  ASSERT_EQ(fh.size(), fe.size());
  for (std::size_t i = 0; i < fh.size(); ++i) EXPECT_EQ(fe[i], fh[i]) << i;
}

// ---------------------------------------------------------- device --------

TEST(CmfdConformance, DeviceMatchesHostToSolverPrecision) {
  const SolveResult rc = run_cpu(1, SweepBackend::kHistory);

  Problem p = gate_problem();
  gpusim::Device device(gpusim::DeviceSpec{});
  GpuSolver gpu(p.stacks, p.model.materials, device, GpuSolverOptions{});
  gpu.enable_cmfd(cmfd_on());
  const SolveResult rg = gpu.solve(gate_options());
  ASSERT_TRUE(rg.converged);
  EXPECT_FALSE(gpu.cmfd_accel()->degraded());
  EXPECT_EQ(rg.iterations, rc.iterations);
  EXPECT_NEAR(rg.k_eff, rc.k_eff, 1e-8);
}

// ---------------------------------------------------------- engine --------

TEST(CmfdConformance, EngineWarmJobBitwiseIdenticalToColdOneShot) {
  models::C5G7Options mo;
  mo.pins_per_assembly = 3;
  mo.fuel_layers = 2;
  mo.reflector_layers = 1;
  mo.height_scale = 0.1;
  engine::SessionOptions opts;
  opts.num_devices = 1;
  opts.device = gpusim::DeviceSpec::scaled(std::size_t{256} << 20, 4);
  opts.num_azim = 4;
  opts.azim_spacing = 0.5;
  opts.num_polar = 2;
  opts.z_spacing = 1.0;
  opts.solve.tolerance = 1e-6;
  opts.solve.max_iterations = 500;
  opts.sweep_workers = 2;
  opts.cmfd.enable = true;

  engine::Session session(models::build_core(mo), opts);
  engine::Scenario scenario;
  scenario.name = "base";
  // Warm: borrows the session-shared CmfdContext. Cold: builds its own
  // mesh + plan from scratch. Construction is deterministic, so the two
  // must be bitwise identical.
  const engine::JobResult warm = session.submit(scenario).get();
  const engine::JobResult cold = session.solve_one_shot(scenario);
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(warm.k_eff, cold.k_eff);
  EXPECT_EQ(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.residual, cold.residual);
  ASSERT_EQ(warm.group_flux.size(), cold.group_flux.size());
  for (std::size_t g = 0; g < warm.group_flux.size(); ++g)
    EXPECT_EQ(warm.group_flux[g], cold.group_flux[g]) << "group " << g;
}

// ------------------------------------------------------- decomposed --------

TEST(CmfdConformance, DecomposedAcceleratesAndMatchesSingleDomain) {
  const auto model = gate_problem().model;
  const SolveOptions opts = gate_options();
  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.3;
  params.num_polar = 2;
  params.z_spacing = 0.75;

  const auto plain = solve_decomposed(model.geometry, model.materials,
                                      {1, 1, 2}, params, opts);
  ASSERT_TRUE(plain.result.converged);

  params.cmfd = cmfd_on();
  const auto acc = solve_decomposed(model.geometry, model.materials,
                                    {1, 1, 2}, params, opts);
  ASSERT_TRUE(acc.result.converged);

  // Same laydown, so the accelerated fixed point agrees to pcm; the
  // interface currents ride in the removal term (Jacobi-lagged exchange),
  // so acceleration must survive decomposition (measured ~9x).
  EXPECT_NEAR(acc.result.k_eff, plain.result.k_eff, 5e-5);
  EXPECT_LE(acc.result.iterations * 3, plain.result.iterations);

  // Single-domain via the same driver: different laydown per sub-box, so
  // agreement is to discretization accuracy, exactly like the plain
  // decomposed-vs-single contract.
  const auto single = solve_decomposed(model.geometry, model.materials,
                                       {1, 1, 1}, params, opts);
  ASSERT_TRUE(single.result.converged);
  EXPECT_NEAR(acc.result.k_eff, single.result.k_eff,
              0.01 * single.result.k_eff);
}

TEST(CmfdConformance, DecomposedEventBackendBitwiseIdenticalToHistory) {
  const auto model = gate_problem().model;
  const SolveOptions opts = gate_options();
  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.3;
  params.num_polar = 2;
  params.z_spacing = 0.75;
  params.cmfd = cmfd_on();

  params.sweep_backend = SweepBackend::kHistory;
  const auto hist = solve_decomposed(model.geometry, model.materials,
                                     {1, 1, 2}, params, opts);
  params.sweep_backend = SweepBackend::kEvent;
  const auto ev = solve_decomposed(model.geometry, model.materials,
                                   {1, 1, 2}, params, opts);
  EXPECT_EQ(ev.result.k_eff, hist.result.k_eff);
  EXPECT_EQ(ev.result.iterations, hist.result.iterations);
  ASSERT_EQ(ev.scalar_flux.size(), hist.scalar_flux.size());
  for (std::size_t i = 0; i < ev.scalar_flux.size(); ++i)
    EXPECT_EQ(ev.scalar_flux[i], hist.scalar_flux[i]) << i;
}

}  // namespace
}  // namespace antmoc
