#include <gtest/gtest.h>

#include <numeric>

#include "models/c5g7_model.h"
#include "partition/load_mapper.h"
#include "partition/partitioner.h"
#include "util/error.h"
#include "util/rng.h"

namespace antmoc::partition {
namespace {

// ------------------------------------------------------------------ Graph ---

TEST(Graph, EdgesAccumulateAndAreSymmetric) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 2, 1.0);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].second, 5.0);
  ASSERT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), Error);
  EXPECT_THROW(g.add_edge(0, 9, 1.0), Error);
}

TEST(Graph, TotalWeightSums) {
  Graph g(3);
  g.set_weight(0, 1.0);
  g.set_weight(1, 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.5);
}

// ------------------------------------------------------------ partitioner ---

Graph random_graph(int n, std::uint64_t seed, double skew = 3.0) {
  Rng rng(seed);
  Graph g(n);
  for (int v = 0; v < n; ++v)
    g.set_weight(v, 1.0 + skew * rng.next_double());
  // Ring + chords for connectivity.
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n, 1.0);
  for (int v = 0; v < n; v += 3)
    g.add_edge(v, (v + n / 2) % n, 0.5);
  return g;
}

TEST(Partitioner, EveryVertexAssignedInRange) {
  const auto g = random_graph(50, 7);
  const auto part = partition_kway(g, 6);
  ASSERT_EQ(part.size(), 50u);
  for (int p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 6);
  }
  // All parts used for a graph much larger than k.
  std::vector<int> used(6, 0);
  for (int p : part) used[p] = 1;
  EXPECT_EQ(std::accumulate(used.begin(), used.end(), 0), 6);
}

TEST(Partitioner, BeatsBlockBaselineOnSkewedLoads) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto g = random_graph(64, seed, 10.0);
    const auto balanced = partition_kway(g, 8);
    const auto blocks = partition_blocks(64, 8);
    const double u_bal = load_uniformity(g.weights(), balanced, 8);
    const double u_blk = load_uniformity(g.weights(), blocks, 8);
    EXPECT_LE(u_bal, u_blk + 1e-12) << "seed " << seed;
    EXPECT_LT(u_bal, 1.15) << "seed " << seed;
  }
}

TEST(Partitioner, SinglePartIsTrivial) {
  const auto g = random_graph(10, 1);
  const auto part = partition_kway(g, 1);
  for (int p : part) EXPECT_EQ(p, 0);
  EXPECT_DOUBLE_EQ(load_uniformity(g.weights(), part, 1), 1.0);
  EXPECT_DOUBLE_EQ(edge_cut(g, part), 0.0);
}

TEST(Partitioner, EdgeCutCountsCrossingEdgesOnce) {
  Graph g(4);
  for (int v = 0; v < 4; ++v) g.set_weight(v, 1.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(1, 2, 5.0);
  const std::vector<int> part{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(edge_cut(g, part), 5.0);
}

TEST(Partitioner, BlockBaselineIsContiguous) {
  const auto part = partition_blocks(10, 3);
  EXPECT_EQ(part, (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}));
}

TEST(Partitioner, UniformityIsOneForPerfectBalance) {
  const std::vector<double> w{1, 1, 1, 1};
  const std::vector<int> part{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(load_uniformity(w, part, 2), 1.0);
}

// ------------------------------------------------------------ load mapper ---

DecompositionLoads c5g7_loads(int nx = 3, int ny = 3, int nz = 2) {
  models::C5G7Options opt;
  opt.pins_per_assembly = 5;  // scaled core keeps heterogeneity
  opt.fuel_layers = 3;
  const auto model = models::build_core(opt);
  const Decomposition decomp{nx, ny, nz};
  // 16 azimuthal angles -> 8 scalar angles: enough granularity that the
  // L2 angle split is finer than one-angle-per-GPU.
  return measure_loads(model.geometry, decomp, 16, 0.4, 2, 2.0);
}

TEST(LoadMapper, MeasuredLoadsReflectCoreHeterogeneity) {
  const auto loads = c5g7_loads();
  ASSERT_EQ(loads.domain_load.size(), 18u);
  EXPECT_GT(loads.total_tracks_3d, 0);
  // Domains over the reflector corner carry far fewer segments than the
  // fueled corner: the imbalance the three-level mapping attacks.
  const double fueled = loads.domain_load[0];      // (0,0,0): inner UO2
  const double reflector = loads.domain_load[8];   // (2,2,0): outer corner
  EXPECT_GT(fueled, 1.2 * reflector);
  // Azimuthal loads sum back to the domain load.
  for (std::size_t d = 0; d < loads.domain_load.size(); ++d) {
    const double sum = std::accumulate(loads.azim_load[d].begin(),
                                       loads.azim_load[d].end(), 0.0);
    EXPECT_NEAR(sum, loads.domain_load[d], 1e-9 * (1.0 + sum));
  }
}

TEST(LoadMapper, L1ImprovesNodeUniformity) {
  const auto loads = c5g7_loads();
  const int nodes = 4;
  const auto balanced = map_domains_to_nodes(loads, nodes, true);
  const auto baseline = map_domains_to_nodes(loads, nodes, false);
  const double u_bal = load_uniformity(loads.domain_load, balanced, nodes);
  const double u_base = load_uniformity(loads.domain_load, baseline, nodes);
  EXPECT_LT(u_bal, u_base);
}

TEST(LoadMapper, L2ImprovesGpuUniformity) {
  const auto loads = c5g7_loads();
  const int nodes = 4, gpus_per_node = 4;
  const auto node_of = map_domains_to_nodes(loads, nodes, true);
  const auto gpu_bal =
      map_azim_to_gpus(loads, node_of, nodes, gpus_per_node, true);
  const auto gpu_base =
      map_azim_to_gpus(loads, node_of, nodes, gpus_per_node, false);

  auto uniformity = [](const std::vector<double>& v) {
    const double total = std::accumulate(v.begin(), v.end(), 0.0);
    return *std::max_element(v.begin(), v.end()) / (total / v.size());
  };
  EXPECT_LT(uniformity(gpu_bal), uniformity(gpu_base));
  // Totals conserved by both mappings.
  EXPECT_NEAR(std::accumulate(gpu_bal.begin(), gpu_bal.end(), 0.0),
              std::accumulate(gpu_base.begin(), gpu_base.end(), 0.0),
              1e-6);
}

TEST(LoadMapper, L3SortedRoundRobinNearPerfect) {
  Rng rng(11);
  std::vector<double> costs(5000);
  for (auto& c : costs) c = 1.0 + 50.0 * rng.next_double();
  const double balanced = cu_uniformity(costs, 64, true);
  const double baseline = cu_uniformity(costs, 64, false);
  EXPECT_LT(balanced, baseline);
  EXPECT_LT(balanced, 1.05);
  EXPECT_GE(balanced, 1.0);
}

TEST(LoadMapper, CuUniformityHandlesDegenerateInputs) {
  EXPECT_DOUBLE_EQ(cu_uniformity({}, 8, true), 1.0);
  EXPECT_DOUBLE_EQ(cu_uniformity({5.0}, 1, false), 1.0);
}

}  // namespace
}  // namespace antmoc::partition
