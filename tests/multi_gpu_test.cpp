#include <gtest/gtest.h>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/multi_gpu_solver.h"
#include "util/error.h"

namespace antmoc {
namespace {

struct Fixture {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  explicit Fixture(int nazim = 8, double spacing = 0.2, int npolar = 1,
                   double dz = 0.5)
      : model(models::build_pin_cell(2, 2.0)),
        quad(nazim, spacing, 1.26, 1.26, npolar),
        gen(quad, model.geometry.bounds(),
            {LinkKind::kReflective, LinkKind::kReflective,
             LinkKind::kReflective, LinkKind::kReflective}),
        stacks((gen.trace(model.geometry), gen), model.geometry, 0.0, 2.0,
               dz) {}
};

MultiGpuOptions options(int devices, bool balance = true) {
  MultiGpuOptions opts;
  opts.num_devices = devices;
  opts.device_spec = gpusim::DeviceSpec::scaled(std::size_t{1} << 28, 8);
  opts.balance_angles = balance;
  return opts;
}

TEST(MultiGpu, MatchesSingleSolverPhysics) {
  Fixture f;
  SolveOptions sopts;
  sopts.tolerance = 1e-6;
  sopts.max_iterations = 20000;

  CpuSolver reference(f.stacks, f.model.materials);
  const auto ref = reference.solve(sopts);

  MultiGpuSolver multi(f.stacks, f.model.materials, options(3));
  const auto got = multi.solve(sopts);

  ASSERT_TRUE(ref.converged);
  ASSERT_TRUE(got.converged);
  EXPECT_NEAR(got.k_eff, ref.k_eff, 1e-5 * ref.k_eff);
}

TEST(MultiGpu, SingleDeviceDegenerateCase) {
  Fixture f;
  MultiGpuSolver multi(f.stacks, f.model.materials, options(1));
  SolveOptions sopts;
  sopts.fixed_iterations = 2;
  multi.solve(sopts);
  // Nothing ever crosses a device boundary.
  EXPECT_EQ(multi.last_sweep_dma_bytes(), 0u);
  EXPECT_DOUBLE_EQ(multi.device_load_uniformity(), 1.0);
}

TEST(MultiGpu, CrossDeviceFluxTravelsOverDma) {
  Fixture f;
  MultiGpuSolver multi(f.stacks, f.model.materials, options(2));
  SolveOptions sopts;
  sopts.fixed_iterations = 2;
  multi.solve(sopts);
  // Reflective partners belong to complementary angles; with the angles
  // split across devices much of the boundary flux must cross.
  EXPECT_GT(multi.last_sweep_dma_bytes(), 0u);
  // The device-level DMA accounting saw the same traffic.
  std::uint64_t dma_out = 0;
  for (int d = 0; d < multi.num_devices(); ++d)
    dma_out += multi.device(d).dma_bytes_out();
  EXPECT_GE(dma_out, multi.last_sweep_dma_bytes());
}

TEST(MultiGpu, EveryAngleOwnedByExactlyOneDevice) {
  Fixture f;
  MultiGpuSolver multi(f.stacks, f.model.materials, options(3));
  const int n_azim = f.quad.num_azim_2();
  for (int a = 0; a < n_azim; ++a) {
    const int d = multi.device_of_azim(a);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 3);
  }
}

TEST(MultiGpu, BalancedAnglesEvenOutDeviceCycles) {
  Fixture f(16, 0.1, 2, 0.25);
  SolveOptions sopts;
  sopts.fixed_iterations = 1;

  MultiGpuSolver balanced(f.stacks, f.model.materials,
                          options(4, /*balance=*/true));
  balanced.solve(sopts);
  MultiGpuSolver blocks(f.stacks, f.model.materials,
                        options(4, /*balance=*/false));
  blocks.solve(sopts);

  EXPECT_LE(balanced.device_load_uniformity(),
            blocks.device_load_uniformity() + 1e-9);
  EXPECT_LT(balanced.device_load_uniformity(), 1.25);
}

TEST(MultiGpu, BaselineBlocksStillCorrect) {
  Fixture f;
  SolveOptions sopts;
  sopts.tolerance = 1e-6;
  sopts.max_iterations = 20000;
  MultiGpuSolver bal(f.stacks, f.model.materials, options(2, true));
  MultiGpuSolver blk(f.stacks, f.model.materials, options(2, false));
  const double k_bal = bal.solve(sopts).k_eff;
  const double k_blk = blk.solve(sopts).k_eff;
  EXPECT_NEAR(k_bal, k_blk, 1e-6 * k_bal);
}

TEST(MultiGpu, RejectsZeroDevices) {
  Fixture f;
  EXPECT_THROW(
      MultiGpuSolver(f.stacks, f.model.materials, options(0)), Error);
}

}  // namespace
}  // namespace antmoc
