/// \file fault_test.cpp
/// The failure-injection suite (ctest label: fault): scripted faults from
/// src/fault, comm deadlines and poisoned-world semantics, the
/// EXP -> Managed -> OTF degradation ladder, and checkpoint/resume after a
/// mid-iteration fault.

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <thread>

#include "comm/runtime.h"
#include "fault/fault.h"
#include "geometry/builder.h"
#include "models/c5g7_model.h"
#include "solver/domain_solver.h"
#include "solver/resilient_solver.h"
#include "util/config.h"
#include "util/error.h"
#include "util/log.h"

namespace antmoc {
namespace {

using comm::CommOptions;
using comm::Communicator;
using comm::Runtime;

// ------------------------------------------------------ fault injector ----

TEST(FaultInjector, DisabledPointsAreInert) {
  fault::Injector::instance().disarm_all();
  EXPECT_FALSE(fault::Injector::enabled());
  for (int i = 0; i < 1000; ++i) fault::point("nowhere");
  // Hits are not even counted while disabled: the point is a single
  // relaxed atomic load, so leaving it in production code is free.
  EXPECT_EQ(fault::Injector::instance().hits("nowhere"), 0u);
}

TEST(FaultInjector, ThrowsOnExactlyTheNthHit) {
  fault::Plan plan;
  plan.point = "test.alloc";
  plan.error = fault::ErrorKind::kDeviceOutOfMemory;
  plan.nth = 3;
  fault::ScopedPlan scoped(plan);
  EXPECT_NO_THROW(fault::point("test.alloc"));
  EXPECT_NO_THROW(fault::point("test.alloc"));
  EXPECT_THROW(fault::point("test.alloc"), DeviceOutOfMemory);
  // One-shot: the spent plan never fires again.
  EXPECT_NO_THROW(fault::point("test.alloc"));
  EXPECT_EQ(fault::Injector::instance().hits("test.alloc"), 4u);
}

TEST(FaultInjector, RepeatPlanKeepsFiring) {
  fault::ScopedPlan scoped("test.repeat throw solver nth=2 repeat");
  EXPECT_NO_THROW(fault::point("test.repeat"));
  EXPECT_THROW(fault::point("test.repeat"), SolverError);
  EXPECT_THROW(fault::point("test.repeat"), SolverError);
}

TEST(FaultInjector, RankFilterRestrictsThePlan) {
  fault::ScopedPlan scoped("test.rank throw generic rank=1");
  EXPECT_NO_THROW(fault::point("test.rank", 0));
  EXPECT_NO_THROW(fault::point("test.rank", 2));
  EXPECT_THROW(fault::point("test.rank", 1), Error);
}

TEST(FaultInjector, DelayPlanSleeps) {
  fault::ScopedPlan scoped("test.delay delay ms=40");
  const auto t0 = std::chrono::steady_clock::now();
  fault::point("test.delay");
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 25.0);
}

TEST(FaultInjector, ConfiguresFromRunConfig) {
  const Config config = Config::parse(
      "fault:\n"
      "  plans: \"test.cfg throw solver nth=2; test.cfg2 delay ms=1\"\n");
  fault::Injector::instance().configure(config);
  EXPECT_TRUE(fault::Injector::enabled());
  EXPECT_NO_THROW(fault::point("test.cfg"));
  EXPECT_THROW(fault::point("test.cfg"), SolverError);
  fault::Injector::instance().disarm_all();
  EXPECT_FALSE(fault::Injector::enabled());
}

TEST(FaultInjector, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::parse_plan(""), ConfigError);
  EXPECT_THROW(fault::parse_plan("p bogus-token"), ConfigError);
  EXPECT_THROW(fault::parse_plan("p throw nth=0"), ConfigError);
}

// ----------------------------------------------------- comm deadlines ----

TEST(CommDeadline, RecvTimesOutNamingRankPeerAndTag) {
  CommOptions opts;
  opts.deadline = std::chrono::milliseconds(100);
  try {
    Runtime::run(
        2,
        [](Communicator& comm) {
          if (comm.rank() == 0) {
            std::vector<int> in;
            comm.recv(1, /*tag=*/7, in);  // rank 1 never sends
          }
        },
        opts);
    FAIL() << "recv did not time out";
  } catch (const CommTimeout& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("tag 7"), std::string::npos) << what;
    EXPECT_NE(what.find("deadline"), std::string::npos) << what;
  }
}

TEST(CommDeadline, BarrierTimesOutWhenARankNeverArrives) {
  CommOptions opts;
  opts.deadline = std::chrono::milliseconds(100);
  EXPECT_THROW(Runtime::run(
                   2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) comm.barrier();  // alone forever
                   },
                   opts),
               CommTimeout);
}

TEST(CommDeadline, FastExchangeIsUnaffected) {
  CommOptions opts;
  opts.deadline = std::chrono::milliseconds(2000);
  Runtime::run(
      2,
      [](Communicator& comm) {
        const std::vector<double> out{1.0, 2.0};
        std::vector<double> in;
        comm.sendrecv(1 - comm.rank(), 5, out, in);
        EXPECT_EQ(in.size(), 2u);
        comm.barrier();
        EXPECT_DOUBLE_EQ(comm.allreduce(1.0, comm::ReduceOp::kSum), 2.0);
      },
      opts);
}

// ------------------------------------------------------ poisoned world ----

TEST(PoisonedWorld, RankDeathWakesReceiversBlockedWithoutDeadline) {
  // Ranks 0 and 2 block in recv on rank 1, which dies before sending.
  // Without poisoning this hangs forever (no deadline is configured);
  // with it, every rank joins and the original error is rethrown.
  EXPECT_THROW(
      Runtime::run(3,
                   [](Communicator& comm) {
                     if (comm.rank() == 1) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(50));
                       fail<SolverError>("rank 1 died before the exchange");
                     }
                     std::vector<double> in;
                     comm.recv(1, /*tag=*/42, in);
                   }),
      SolverError);
}

TEST(PoisonedWorld, RankDeathWakesBarrierAndAllreduce) {
  EXPECT_THROW(
      Runtime::run(3,
                   [](Communicator& comm) {
                     if (comm.rank() == 1) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(50));
                       fail<SolverError>("rank 1 died before the barrier");
                     }
                     if (comm.rank() == 0) comm.barrier();
                     std::vector<double> v{1.0};
                     comm.allreduce(v, comm::ReduceOp::kSum);
                   }),
      SolverError);
}

TEST(PoisonedWorld, PeerFailureCarriesThePoisonCause) {
  try {
    Runtime::run(2, [](Communicator& comm) {
      if (comm.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        throw std::logic_error("not an antmoc error");
      }
      std::vector<double> in;
      comm.recv(1, 3, in);
    });
    FAIL() << "world did not fail";
  } catch (const PeerFailure& e) {
    // Rank 0's PeerFailure is the only antmoc-typed record; it must name
    // the failing rank and cause.
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
  } catch (const std::logic_error&) {
    // Also acceptable: the original error was preferred on rethrow.
  }
}

TEST(PoisonedWorld, DecomposedSolveTerminatesWhenOneRankDiesPreExchange) {
  // An injected failure kills rank 2's very first send (during interface
  // setup) while its peers are already blocked in recv. The solve must
  // terminate with the injected error surfaced — before the poisoned-world
  // mechanism existed, this configuration deadlocked.
  GeometryBuilder b;
  const int u = b.add_universe("water");
  b.add_cell(u, "w", 6, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 2.0;
  bounds.y_max = 2.0;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.add_axial_zone(0.0, 2.0, 2);
  models::C5G7Model model{b.build(), models::build_pin_cell(1, 1.0).materials};

  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.5;
  params.num_polar = 1;
  params.z_spacing = 1.0;

  fault::ScopedPlan scoped("comm.send throw generic rank=2 nth=1");
  EXPECT_THROW(solve_decomposed(model.geometry, model.materials, {2, 2, 1},
                                params, SolveOptions{}),
               Error);
}

// ------------------------------------------------- collective hygiene ----

TEST(Gather, MismatchedContributionThrowsDescriptiveError) {
  try {
    Runtime::run(2, [](Communicator& comm) {
      // Rank 1 contributes 3 elements where the root expects 2: the root
      // must throw a gather-specific diagnostic, not corrupt its buffer.
      const std::vector<int> local(comm.rank() == 0 ? 2 : 3, comm.rank());
      std::vector<int> all;
      comm.gather(local, all, /*root=*/0);
    });
    FAIL() << "mismatched gather did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("gather"), std::string::npos)
        << e.what();
  }
}

TEST(Recv, NonIntegralElementCountThrowsWithBothSizes) {
  try {
    Runtime::run(2, [](Communicator& comm) {
      if (comm.rank() == 0) {
        const char five[5] = {1, 2, 3, 4, 5};
        comm.send(1, 0, five, sizeof five);
      } else {
        std::vector<int> in;  // 5 bytes is not a whole number of ints
        comm.recv(0, 0, in);
      }
    });
    FAIL() << "indivisible payload did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5-byte"), std::string::npos) << what;
    EXPECT_NE(what.find("4-byte"), std::string::npos) << what;
  }
}

// ------------------------------------------------------ log sink race ----

TEST(LogSink, ConcurrentSwapAndWriteIsSafe) {
  const std::string a = ::testing::TempDir() + "/antmoc_fault_log_a.txt";
  const std::string c = ::testing::TempDir() + "/antmoc_fault_log_b.txt";
  std::remove(a.c_str());
  std::remove(c.c_str());
  log::set_file(a);

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w)
    writers.emplace_back([w] {
      for (int i = 0; i < 300; ++i)
        log::warn("cascade rank ", w, " message ", i);
    });
  // Swap the sink underneath the writers — the shared_ptr hand-off keeps
  // every in-flight write on a live stream.
  for (int i = 0; i < 100; ++i) {
    log::set_file(c);
    log::set_file(a);
  }
  for (auto& t : writers) t.join();
  log::set_file("");

  std::ifstream in(a);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("cascade rank"), std::string::npos);
  std::remove(a.c_str());
  std::remove(c.c_str());
}

// ----------------------------------------------- degradation ladder ----

/// The robustness_test OOM geometry: a heavily subdivided pin whose 3D
/// segments (~321 KiB) push EXP (~906 KiB total) past small devices while
/// OTF (~585 KiB) fits.
struct OomProblem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  static models::C5G7Model build_model() {
    GeometryBuilder b;
    PinSubdivision sub;
    sub.fuel_rings = 3;
    sub.fuel_sectors = 8;
    sub.moderator_sectors = 8;
    const int pin = b.add_pin_universe("pin", 0, 6, 0.54, sub);
    const int root = b.add_lattice("r", 1, 1, 1.26, 1.26, 0.0, 0.0, {pin});
    b.set_root(root);
    Bounds bounds;
    bounds.x_max = 1.26;
    bounds.y_max = 1.26;
    b.set_bounds(bounds);
    b.set_all_radial_boundaries(BoundaryType::kReflective);
    b.set_boundary(Face::kZMin, BoundaryType::kReflective);
    b.set_boundary(Face::kZMax, BoundaryType::kReflective);
    b.add_axial_zone(0.0, 2.0, 4);
    return {b.build(), models::build_pin_cell(1, 1.0).materials};
  }

  OomProblem()
      : model(build_model()),
        quad(8, 0.1, 1.26, 1.26, 2),
        gen(quad, model.geometry.bounds(),
            {LinkKind::kReflective, LinkKind::kReflective,
             LinkKind::kReflective, LinkKind::kReflective}),
        stacks((gen.trace(model.geometry), gen), model.geometry, 0.0, 2.0,
               0.25) {}
};

TEST(DegradationLadder, ExpDowngradesToManagedOnTooSmallDevice) {
  OomProblem p;
  gpusim::Device device(gpusim::DeviceSpec::scaled(700 << 10, 8));

  ResilientSolveOptions opts;
  opts.gpu.policy = TrackPolicy::kExplicit;
  opts.gpu.resident_budget_bytes = 256 << 10;
  opts.min_budget_bytes = 4 << 10;
  opts.max_budget_shrinks = 8;
  opts.solve.fixed_iterations = 3;

  const auto report =
      solve_resilient(p.stacks, p.model.materials, device, opts);
  EXPECT_EQ(report.requested_policy, TrackPolicy::kExplicit);
  EXPECT_EQ(report.actual_policy, TrackPolicy::kManaged);
  // First rung halves the segment footprint (EXP -> EXP[compact]); this
  // geometry still overflows, so the policy ladder follows: EXP->Managed,
  // then shrink(s).
  ASSERT_GE(report.downgrades.size(), 3u);
  EXPECT_EQ(report.downgrades.front().from, TrackPolicy::kExplicit);
  EXPECT_EQ(report.downgrades.front().to, TrackPolicy::kExplicit);
  EXPECT_EQ(report.downgrades.front().from_storage, TrackStorage::kExact);
  EXPECT_EQ(report.downgrades.front().to_storage, TrackStorage::kCompact);
  EXPECT_EQ(report.downgrades[1].from, TrackPolicy::kExplicit);
  EXPECT_EQ(report.downgrades[1].to, TrackPolicy::kManaged);
  EXPECT_EQ(report.actual_storage, TrackStorage::kCompact);
  EXPECT_LT(report.resident_budget_bytes,
            static_cast<std::size_t>(256 << 10));
  for (const auto& step : report.downgrades)
    EXPECT_FALSE(step.reason.empty());
  EXPECT_TRUE(report.result.converged);
  EXPECT_GT(report.result.k_eff, 0.0);
  EXPECT_NE(report.summary().find("Managed"), std::string::npos);
  EXPECT_NE(report.summary().find("[compact]"), std::string::npos);
}

TEST(DegradationLadder, ExhaustedBudgetFallsAllTheWayToOtf) {
  OomProblem p;
  gpusim::Device device(gpusim::DeviceSpec::scaled(600 << 10, 8));

  ResilientSolveOptions opts;
  opts.gpu.policy = TrackPolicy::kExplicit;
  opts.gpu.resident_budget_bytes = 256 << 10;
  opts.min_budget_bytes = 64 << 10;  // shrinking below this is pointless
  opts.max_budget_shrinks = 8;
  opts.solve.fixed_iterations = 3;

  const auto report =
      solve_resilient(p.stacks, p.model.materials, device, opts);
  EXPECT_EQ(report.actual_policy, TrackPolicy::kOnTheFly);
  EXPECT_EQ(report.downgrades.back().to, TrackPolicy::kOnTheFly);
  EXPECT_TRUE(report.result.converged);
}

TEST(DegradationLadder, NowhereLeftToDegradeRethrows) {
  OomProblem p;
  // Smaller than even the OTF footprint: the ladder must end by
  // surfacing the original DeviceOutOfMemory, not by looping.
  gpusim::Device device(gpusim::DeviceSpec::scaled(100 << 10, 8));
  ResilientSolveOptions opts;
  opts.gpu.policy = TrackPolicy::kExplicit;
  opts.solve.fixed_iterations = 1;
  EXPECT_THROW(solve_resilient(p.stacks, p.model.materials, device, opts),
               DeviceOutOfMemory);
}

TEST(DegradationLadder, ScriptedNthAllocationOomTriggersDowngrade) {
  OomProblem p;
  // Plenty of real memory: only the scripted fault forces the downgrade.
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));

  fault::ScopedPlan scoped("gpusim.alloc throw oom nth=1");
  ResilientSolveOptions opts;
  opts.gpu.policy = TrackPolicy::kExplicit;
  opts.solve.fixed_iterations = 2;
  const auto report =
      solve_resilient(p.stacks, p.model.materials, device, opts);
  // The single scripted OOM is absorbed by the first (storage) rung: the
  // retry keeps EXP but with compact 8 B/segment stores.
  ASSERT_EQ(report.downgrades.size(), 1u);
  EXPECT_EQ(report.downgrades[0].from, TrackPolicy::kExplicit);
  EXPECT_EQ(report.downgrades[0].to, TrackPolicy::kExplicit);
  EXPECT_EQ(report.downgrades[0].from_storage, TrackStorage::kExact);
  EXPECT_EQ(report.downgrades[0].to_storage, TrackStorage::kCompact);
  EXPECT_NE(report.downgrades[0].reason.find("fault injected"),
            std::string::npos);
  EXPECT_EQ(report.actual_policy, TrackPolicy::kExplicit);
  EXPECT_EQ(report.actual_storage, TrackStorage::kCompact);
  EXPECT_TRUE(report.result.converged);
}

// -------------------------------------------------- checkpoint/resume ----

TEST(CheckpointResume, MidIterationFaultResumesToTheSameEigenvalue) {
  models::C5G7Model model = models::build_pin_cell(2, 2.0);
  const Quadrature quad(4, 0.25, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, model.geometry.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(model.geometry);
  const TrackStacks stacks(gen, model.geometry, 0.0, 2.0, 0.5);

  ResilientSolveOptions opts;
  opts.gpu.policy = TrackPolicy::kOnTheFly;
  opts.solve.tolerance = 1e-6;
  opts.solve.max_iterations = 20000;

  // Uninterrupted reference on an identical device configuration.
  gpusim::Device ref_device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30,
                                                       8));
  const auto reference =
      solve_resilient(stacks, model.materials, ref_device, opts);
  ASSERT_TRUE(reference.result.converged);
  ASSERT_GT(reference.result.iterations, 30);

  // Same solve, but iteration 25 is killed by an injected fault; the
  // checkpoint from iteration 20 carries the solve through.
  const std::string path = ::testing::TempDir() + "/antmoc_fault.ckpt";
  std::remove(path.c_str());
  fault::ScopedPlan scoped("solver.iteration throw solver nth=25");
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  ResilientSolveOptions resumed = opts;
  resumed.checkpoint_every = 5;
  resumed.checkpoint_path = path;
  const auto report = solve_resilient(stacks, model.materials, device,
                                      resumed);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_TRUE(report.resumed_from_checkpoint);
  ASSERT_TRUE(report.result.converged);
  EXPECT_NEAR(report.result.k_eff, reference.result.k_eff,
              1e-5 * reference.result.k_eff);
  EXPECT_NE(report.summary().find("restart"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointResume, FaultWithoutCheckpointingStillSurfaces) {
  models::C5G7Model model = models::build_pin_cell(2, 2.0);
  const Quadrature quad(4, 0.25, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, model.geometry.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(model.geometry);
  const TrackStacks stacks(gen, model.geometry, 0.0, 2.0, 0.5);

  fault::ScopedPlan scoped("solver.iteration throw solver nth=3");
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  ResilientSolveOptions opts;
  opts.gpu.policy = TrackPolicy::kOnTheFly;
  opts.solve.fixed_iterations = 10;
  EXPECT_THROW(solve_resilient(stacks, model.materials, device, opts),
               SolverError);
}

TEST(CheckpointResume, ResumeIsBitwiseExactUnderManagedAndOtf) {
  // Exact-state resume (DESIGN.md §11): checkpoints are written after the
  // iteration's normalization and the resume path re-derives only the
  // source, so 4 iterations + save + load + 4 more must land on the
  // *bit-identical* eigenvalue and flux of 8 uninterrupted iterations —
  // under both track policies, since neither regeneration path touches
  // the checkpointed state.
  models::C5G7Model model = models::build_pin_cell(2, 2.0);
  const Quadrature quad(4, 0.25, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, model.geometry.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(model.geometry);
  const TrackStacks stacks(gen, model.geometry, 0.0, 2.0, 0.5);

  for (const TrackPolicy policy :
       {TrackPolicy::kManaged, TrackPolicy::kOnTheFly}) {
    SCOPED_TRACE(policy_name(policy));
    GpuSolverOptions gpu;
    gpu.policy = policy;
    if (policy == TrackPolicy::kManaged)
      gpu.resident_budget_bytes = std::size_t{1} << 20;  // forces paging

    SolveOptions eight;
    eight.fixed_iterations = 8;
    gpusim::Device ref_device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    GpuSolver reference(stacks, model.materials, ref_device, gpu);
    const auto straight = reference.solve(eight);

    const std::string path = ::testing::TempDir() + "/antmoc_resume.ckpt";
    SolveOptions four;
    four.fixed_iterations = 4;
    gpusim::Device dev_a(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    GpuSolver first(stacks, model.materials, dev_a, gpu);
    first.solve(four);
    first.save_state(path, 4);

    gpusim::Device dev_b(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    GpuSolver second(stacks, model.materials, dev_b, gpu);
    EXPECT_EQ(second.load_state(path), 4);
    SolveOptions rest = four;
    rest.resume = true;
    const auto resumed = second.solve(rest);

    EXPECT_EQ(resumed.k_eff, straight.k_eff);
    EXPECT_EQ(second.fsr().scalar_flux(), reference.fsr().scalar_flux());
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace antmoc
