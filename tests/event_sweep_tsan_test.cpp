/// \file event_sweep_tsan_test.cpp
/// Concurrency suite for the event sweep backend, labeled for the tsan
/// preset (`ctest --test-dir build-tsan -L fault`): races the fork-join
/// host sweep over the shared flat event arrays, concurrent solvers
/// reading one immutable EventArrays instance, and an engine session
/// serving concurrent event-backend jobs — so any race in the flatten,
/// the per-worker scratch, or the shared-cache reads trips the sanitizer.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine/session.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/event_sweep.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem small_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return Problem(models::build_core(opt), 4, 0.5, 2, 1.0);
}

TEST(EventSweepConcurrency, ParallelHostEventSweepIsRaceFree) {
  Problem p = small_problem();
  CpuSolver solver(p.stacks, p.model.materials, 4, TemplateMode::kAuto,
                   SweepBackend::kEvent);
  SolveOptions opts;
  opts.fixed_iterations = 3;
  const auto r = solver.solve(opts);
  EXPECT_GT(r.k_eff, 0.0);
}

TEST(EventSweepConcurrency, ConcurrentSolversShareOneEventArrays) {
  Problem p = small_problem();
  const TrackInfoCache cache(p.stacks);
  const EventArrays events(p.stacks, cache, nullptr, 7);

  std::vector<double> k(3, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      CpuSolver solver(p.stacks, p.model.materials, 2, TemplateMode::kOff,
                       SweepBackend::kEvent);
      solver.set_shared_events(&events);
      SolveOptions opts;
      opts.fixed_iterations = 3;
      k[t] = solver.solve(opts).k_eff;
    });
  }
  for (auto& th : threads) th.join();
  // Immutable shared arrays: every reader computes the same answer.
  EXPECT_EQ(k[0], k[1]);
  EXPECT_EQ(k[0], k[2]);
}

TEST(EventSweepConcurrency, EngineServesConcurrentEventJobs) {
  models::C5G7Options mopt;
  mopt.pins_per_assembly = 3;
  mopt.fuel_layers = 2;
  mopt.reflector_layers = 1;
  mopt.height_scale = 0.1;

  engine::SessionOptions opts;
  opts.num_devices = 2;
  opts.device = gpusim::DeviceSpec::scaled(std::size_t{256} << 20, 4);
  opts.num_azim = 4;
  opts.azim_spacing = 0.5;
  opts.num_polar = 2;
  opts.z_spacing = 1.0;
  opts.solve.fixed_iterations = 3;
  opts.sweep_workers = 2;
  opts.max_concurrent = 4;
  opts.gpu.backend = SweepBackend::kEvent;

  engine::Session session(models::build_core(mopt), opts);
  std::vector<engine::Scenario> jobs(4);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    jobs[i].name = "job" + std::to_string(i);
  const auto results = session.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.k_eff, 0.0);
  }
  // Identical scenarios on warm shared state answer identically.
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_EQ(results[0].k_eff, results[i].k_eff) << i;
}

}  // namespace
}  // namespace antmoc
