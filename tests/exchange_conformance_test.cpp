#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "models/c5g7_model.h"
#include "perfmodel/perfmodel.h"
#include "solver/domain_solver.h"

namespace antmoc {
namespace {

// Decomposed-solve conformance matrix (DESIGN.md §8): the overlapped
// exchange must be *bit-identical* to the synchronous one for a fixed
// worker count, and every decomposition must agree physically with the
// single-domain reference, on both sweep engines.

const std::array<Decomposition, 4> kMatrix = {
    Decomposition{1, 1, 1}, Decomposition{2, 1, 1}, Decomposition{2, 2, 1},
    Decomposition{2, 2, 2}};

DomainRunParams host_params() {
  DomainRunParams p;
  p.num_azim = 4;
  p.azim_spacing = 0.2;
  p.num_polar = 1;
  p.z_spacing = 0.5;
  // Exercise the fork-join sweep: bit-identity is only promised for a
  // fixed worker count, so pin it explicitly.
  p.sweep_workers = 2;
  return p;
}

DomainRunParams device_params() {
  DomainRunParams p = host_params();
  p.use_device = true;
  p.device_spec = gpusim::DeviceSpec::scaled(1 << 28, 8);
  p.gpu_options.policy = TrackPolicy::kManaged;
  p.gpu_options.resident_budget_bytes = 1 << 16;
  return p;
}

void expect_bitwise_equal(const DomainRunSummary& a,
                          const DomainRunSummary& b, const char* label) {
  EXPECT_EQ(a.result.k_eff, b.result.k_eff) << label;
  EXPECT_EQ(a.result.iterations, b.result.iterations) << label;
  EXPECT_EQ(a.result.residual, b.result.residual) << label;
  ASSERT_EQ(a.scalar_flux.size(), b.scalar_flux.size()) << label;
  for (std::size_t i = 0; i < a.scalar_flux.size(); ++i)
    ASSERT_EQ(a.scalar_flux[i], b.scalar_flux[i]) << label << " flux " << i;
  ASSERT_EQ(a.fission_rate.size(), b.fission_rate.size()) << label;
  for (std::size_t i = 0; i < a.fission_rate.size(); ++i)
    ASSERT_EQ(a.fission_rate[i], b.fission_rate[i])
        << label << " fission " << i;
}

TEST(ExchangeConformance, OverlapMatchesSyncBitwiseOnHostEngine) {
  const auto model = models::build_pin_cell(2, 2.0);
  SolveOptions opts;
  opts.fixed_iterations = 5;
  for (const auto& d : kMatrix) {
    auto params = host_params();
    params.overlap = true;
    const auto overlapped = solve_decomposed(model.geometry,
                                             model.materials, d, params,
                                             opts);
    params.overlap = false;
    const auto sync = solve_decomposed(model.geometry, model.materials, d,
                                       params, opts);
    const std::string label = "host {" + std::to_string(d.nx) + "," +
                              std::to_string(d.ny) + "," +
                              std::to_string(d.nz) + "}";
    expect_bitwise_equal(overlapped, sync, label.c_str());
  }
}

TEST(ExchangeConformance, OverlapMatchesSyncBitwiseOnDeviceEngine) {
  const auto model = models::build_pin_cell(1, 2.0);
  SolveOptions opts;
  opts.fixed_iterations = 3;
  for (const auto& d : kMatrix) {
    auto params = device_params();
    params.overlap = true;
    const auto overlapped = solve_decomposed(model.geometry,
                                             model.materials, d, params,
                                             opts);
    params.overlap = false;
    const auto sync = solve_decomposed(model.geometry, model.materials, d,
                                       params, opts);
    const std::string label = "device {" + std::to_string(d.nx) + "," +
                              std::to_string(d.ny) + "," +
                              std::to_string(d.nz) + "}";
    expect_bitwise_equal(overlapped, sync, label.c_str());
  }
}

TEST(ExchangeConformance, DecompositionsAgreeWithSingleDomainReference) {
  const auto model = models::build_pin_cell(2, 2.0);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  const auto reference = solve_decomposed(model.geometry, model.materials,
                                          kMatrix[0], host_params(), opts);
  ASSERT_TRUE(reference.result.converged);

  for (std::size_t m = 1; m < kMatrix.size(); ++m) {
    const auto split = solve_decomposed(model.geometry, model.materials,
                                        kMatrix[m], host_params(), opts);
    const std::string label = "{" + std::to_string(kMatrix[m].nx) + "," +
                              std::to_string(kMatrix[m].ny) + "," +
                              std::to_string(kMatrix[m].nz) + "}";
    ASSERT_TRUE(split.result.converged) << label;
    // Each sub-box lays its own modular tracks, so agreement is to the
    // track discretization, not bitwise.
    EXPECT_NEAR(split.result.k_eff, reference.result.k_eff,
                0.01 * reference.result.k_eff)
        << label;

    ASSERT_EQ(split.fission_rate.size(), reference.fission_rate.size());
    for (std::size_t i = 0; i < reference.fission_rate.size(); ++i)
      if (reference.fission_rate[i] > 0.0) {
        EXPECT_NEAR(split.fission_rate[i] / reference.fission_rate[i], 1.0,
                    0.05)
            << label << " fsr " << i;
      }

    ASSERT_EQ(split.scalar_flux.size(), reference.scalar_flux.size());
    for (std::size_t i = 0; i < reference.scalar_flux.size(); ++i)
      if (reference.scalar_flux[i] > 0.0) {
        EXPECT_NEAR(split.scalar_flux[i] / reference.scalar_flux[i], 1.0,
                    0.05)
            << label << " flux " << i;
      }
  }
}

TEST(ExchangeConformance, OverlapRatioReportedOnlyWhenOverlapping) {
  const auto model = models::build_pin_cell(1, 2.0);
  SolveOptions opts;
  opts.fixed_iterations = 3;

  auto params = host_params();
  const auto overlapped = solve_decomposed(model.geometry, model.materials,
                                           {2, 2, 1}, params, opts);
  EXPECT_GT(overlapped.comm_overlap_ratio, 0.0);
  EXPECT_LE(overlapped.comm_overlap_ratio, 1.0);

  params.overlap = false;
  const auto sync = solve_decomposed(model.geometry, model.materials,
                                     {2, 2, 1}, params, opts);
  EXPECT_EQ(sync.comm_overlap_ratio, 0.0);

  const auto single = solve_decomposed(model.geometry, model.materials,
                                       {1, 1, 1}, host_params(), opts);
  EXPECT_EQ(single.comm_overlap_ratio, 0.0);
}

TEST(ExchangeConformance, EqSevenPredictsMeasuredFluxBytes) {
  // Eq. 7 regression on a C5G7 slice: the perfmodel's interface traffic
  // for the measured crossing-track-end count must equal the bytes the
  // solver actually coalesces per iteration — if the payload format ever
  // drifts (precision, headers), this pins it.
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.height_scale = 0.05;
  const auto model = models::build_core(opt);

  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 2.0;
  params.num_polar = 1;
  params.z_spacing = 2.0;
  SolveOptions opts;
  opts.fixed_iterations = 1;

  const auto split = solve_decomposed(model.geometry, model.materials,
                                      {2, 2, 1}, params, opts);
  ASSERT_GT(split.crossing_track_ends, 0);
  EXPECT_EQ(perf::interface_flux_bytes(split.crossing_track_ends, 7),
            split.flux_bytes_per_iter);
  // And the wire traffic is a strict subset of the Eq. 7 full state.
  EXPECT_LT(split.flux_bytes_per_iter,
            perf::communication_bytes(split.total_tracks_3d, 7));
}

}  // namespace
}  // namespace antmoc
