/// \file chord_template_tsan_test.cpp
/// Concurrency companion to chord_template_conformance_test, run under
/// the tsan preset via the fault label (like sweep_tsan_test): the
/// template cache is built once and then read concurrently by every
/// fork-join sweep worker, so a ThreadSanitizer pass over a parallel
/// templated solve proves the cache's immutable-after-construction
/// contract — and bit-reproducibility shows the dispatch order is
/// unaffected by scheduling.

#include <gtest/gtest.h>

#include <vector>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem()
      : model(models::build_pin_cell(4, 4.0)),
        quad(4, 0.4, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), 2),
        gen(quad, model.geometry.bounds(),
            {to_link_kind(model.geometry.boundary(Face::kXMin)),
             to_link_kind(model.geometry.boundary(Face::kXMax)),
             to_link_kind(model.geometry.boundary(Face::kYMin)),
             to_link_kind(model.geometry.boundary(Face::kYMax))}),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, 0.5) {}
};

TEST(ChordTemplateTsan, ConcurrentTemplateReadsMatchSerialBitwise) {
  Problem p;
  SolveOptions fixed;
  fixed.fixed_iterations = 5;

  CpuSolver serial(p.stacks, p.model.materials, 1, TemplateMode::kAuto);
  const auto rs = serial.solve(fixed);

  // Four workers all expand from the same shared template tables.
  CpuSolver parallel(p.stacks, p.model.materials, 4, TemplateMode::kAuto);
  const auto rp = parallel.solve(fixed);

  EXPECT_NEAR(rs.k_eff, rp.k_eff, 1e-10);
  EXPECT_EQ(serial.last_sweep_segments(), parallel.last_sweep_segments());

  // Same worker count => bitwise reproducible, templates or not.
  CpuSolver repeat(p.stacks, p.model.materials, 4, TemplateMode::kAuto);
  const auto rr = repeat.solve(fixed);
  EXPECT_EQ(rp.k_eff, rr.k_eff);
  const auto& f0 = parallel.fsr().scalar_flux();
  const auto& f1 = repeat.fsr().scalar_flux();
  ASSERT_EQ(f0.size(), f1.size());
  for (std::size_t i = 0; i < f0.size(); ++i) EXPECT_EQ(f0[i], f1[i]) << i;
}

TEST(ChordTemplateTsan, ParallelTemplatedMatchesParallelGenericBitwise) {
  Problem p;
  SolveOptions fixed;
  fixed.fixed_iterations = 4;

  CpuSolver templated(p.stacks, p.model.materials, 4, TemplateMode::kAuto);
  CpuSolver generic(p.stacks, p.model.materials, 4, TemplateMode::kOff);
  const auto rt = templated.solve(fixed);
  const auto rg = generic.solve(fixed);

  EXPECT_EQ(rt.k_eff, rg.k_eff);
  const auto& ft = templated.fsr().scalar_flux();
  const auto& fg = generic.fsr().scalar_flux();
  ASSERT_EQ(ft.size(), fg.size());
  for (std::size_t i = 0; i < ft.size(); ++i) EXPECT_EQ(ft[i], fg[i]) << i;
}

}  // namespace
}  // namespace antmoc
