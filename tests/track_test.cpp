#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "geometry/builder.h"
#include "track/generator2d.h"
#include "track/quadrature.h"
#include "track/track3d.h"
#include "util/error.h"

namespace antmoc {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ------------------------------------------------------------ Quadrature ---

TEST(Quadrature, RejectsBadParameters) {
  EXPECT_THROW(Quadrature(3, 0.5, 1, 1, 1), Error);
  EXPECT_THROW(Quadrature(6, 0.5, 1, 1, 1), Error);  // not a multiple of 4
  EXPECT_THROW(Quadrature(4, -0.5, 1, 1, 1), Error);
  EXPECT_THROW(Quadrature(4, 0.5, 1, 1, 0), Error);
}

TEST(Quadrature, AnglesAreSymmetricAboutHalfPi) {
  const Quadrature q(8, 0.3, 2.0, 3.0, 2);
  for (int a = 0; a < q.num_azim_2(); ++a) {
    const int c = q.complement(a);
    EXPECT_NEAR(q.phi(a) + q.phi(c), kPi, 1e-12);
    EXPECT_EQ(q.nx(a), q.nx(c));
    EXPECT_EQ(q.ny(a), q.ny(c));
    EXPECT_NEAR(q.spacing_eff(a), q.spacing_eff(c), 1e-12);
  }
}

TEST(Quadrature, AzimuthalFractionsSumToOne) {
  for (int n : {4, 8, 16, 32}) {
    const Quadrature q(n, 0.25, 1.7, 2.3, 1);
    double sum = 0.0;
    for (int a = 0; a < q.num_azim_2(); ++a) sum += q.azim_frac(a);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "num_azim=" << n;
  }
}

TEST(Quadrature, EffectiveSpacingAtMostRequested) {
  const double req = 0.31;
  const Quadrature q(16, req, 4.0, 4.0, 1);
  for (int a = 0; a < q.num_azim_2(); ++a) {
    EXPECT_LE(q.spacing_eff(a), req + 1e-12);
    EXPECT_GT(q.spacing_eff(a), 0.0);
  }
}

TEST(Quadrature, TyPolarWeightsNormalized) {
  for (int np : {1, 2, 3}) {
    const Quadrature q(4, 0.5, 1, 1, np);
    double sum = 0.0;
    for (int p = 0; p < np; ++p) {
      sum += q.polar_frac(p);
      EXPECT_GT(q.sin_theta(p), 0.0);
      EXPECT_LT(q.sin_theta(p), 1.0);
      EXPECT_NEAR(q.sin_theta(p) * q.sin_theta(p) +
                      q.cos_theta(p) * q.cos_theta(p),
                  1.0, 1e-10);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Quadrature, GaussLegendrePolarForLargeCounts) {
  const Quadrature q(4, 0.5, 1, 1, 5);
  EXPECT_EQ(q.num_polar(), 5);
  double sum = 0.0;
  for (int p = 0; p < 5; ++p) {
    sum += q.polar_frac(p);
    if (p > 0) {
      EXPECT_GT(q.sin_theta(p), q.sin_theta(p - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Quadrature, DirectionWeightsIntegrateTo4Pi) {
  // 4 sign combinations per (a, p): fwd/bwd x up/down.
  const Quadrature q(8, 0.4, 2.0, 1.5, 3);
  double total = 0.0;
  for (int a = 0; a < q.num_azim_2(); ++a)
    for (int p = 0; p < q.num_polar(); ++p)
      total += 4.0 * q.direction_weight(a, p);
  EXPECT_NEAR(total, 4.0 * kPi, 1e-9);
}

// ------------------------------------------------------------- laydown ----

Bounds box2(double wx, double wy) {
  Bounds b;
  b.x_max = wx;
  b.y_max = wy;
  return b;
}

std::array<LinkKind, 4> all_faces(LinkKind k) { return {k, k, k, k}; }

TEST(Generator2D, TrackCountMatchesQuadrature) {
  const Quadrature q(8, 0.4, 3.0, 2.0, 1);
  const TrackGenerator2D gen(q, box2(3.0, 2.0),
                             all_faces(LinkKind::kVacuum));
  int expected = 0;
  for (int a = 0; a < q.num_azim_2(); ++a) expected += q.num_tracks(a);
  EXPECT_EQ(gen.num_tracks(), expected);
}

TEST(Generator2D, EndpointsLieOnBoundary) {
  const Quadrature q(8, 0.4, 3.0, 2.0, 1);
  const TrackGenerator2D gen(q, box2(3.0, 2.0),
                             all_faces(LinkKind::kVacuum));
  const auto on_boundary = [](const Bounds& b, Point2 p) {
    const double tol = 1e-9;
    return std::abs(p.x - b.x_min) < tol || std::abs(p.x - b.x_max) < tol ||
           std::abs(p.y - b.y_min) < tol || std::abs(p.y - b.y_max) < tol;
  };
  for (const auto& t : gen.tracks()) {
    EXPECT_TRUE(on_boundary(gen.box(), t.start));
    EXPECT_TRUE(on_boundary(gen.box(), t.end));
    EXPECT_GT(t.length, 0.0);
    EXPECT_NEAR(t.start.distance(t.end), t.length, 1e-9);
  }
}

TEST(Generator2D, UidIndexing) {
  const Quadrature q(8, 0.5, 2.0, 2.0, 1);
  const TrackGenerator2D gen(q, box2(2.0, 2.0),
                             all_faces(LinkKind::kVacuum));
  for (int a = 0; a < q.num_azim_2(); ++a)
    for (int i = 0; i < q.num_tracks(a); ++i) {
      const auto& t = gen.track(gen.uid(a, i));
      EXPECT_EQ(t.azim, a);
      EXPECT_EQ(t.index_in_azim, i);
    }
}

TEST(Generator2D, VacuumLinksHaveNoTargets) {
  const Quadrature q(4, 0.5, 1.0, 1.0, 1);
  const TrackGenerator2D gen(q, box2(1.0, 1.0),
                             all_faces(LinkKind::kVacuum));
  for (const auto& t : gen.tracks()) {
    EXPECT_EQ(t.fwd_link.kind, LinkKind::kVacuum);
    EXPECT_EQ(t.bwd_link.kind, LinkKind::kVacuum);
  }
}

TEST(Generator2D, ReflectiveLinksResolveAndInvolute) {
  for (int nazim : {4, 8, 16}) {
    const Quadrature q(nazim, 0.37, 2.5, 1.5, 1);
    const TrackGenerator2D gen(q, box2(2.5, 1.5),
                               all_faces(LinkKind::kReflective));
    for (int uid = 0; uid < gen.num_tracks(); ++uid) {
      const auto& t = gen.track(uid);
      ASSERT_GE(t.fwd_link.track, 0);
      ASSERT_GE(t.bwd_link.track, 0);
      // Reflective partners are complementary-angle tracks.
      EXPECT_EQ(gen.track(t.fwd_link.track).azim,
                q.complement(t.azim));
      // Flux continuity is an involution: the link we enter through must
      // link straight back to us.
      const auto& t2 = gen.track(t.fwd_link.track);
      const TrackLink& back =
          t.fwd_link.forward ? t2.bwd_link : t2.fwd_link;
      EXPECT_EQ(back.track, uid);
    }
  }
}

TEST(Generator2D, ReflectiveLinkPreservesEndpoint) {
  const Quadrature q(8, 0.3, 2.0, 2.0, 1);
  const TrackGenerator2D gen(q, box2(2.0, 2.0),
                             all_faces(LinkKind::kReflective));
  for (const auto& t : gen.tracks()) {
    const auto& t2 = gen.track(t.fwd_link.track);
    const Point2 entry = t.fwd_link.forward ? t2.start : t2.end;
    EXPECT_NEAR(entry.x, t.end.x, 1e-6);
    EXPECT_NEAR(entry.y, t.end.y, 1e-6);
  }
}

TEST(Generator2D, PeriodicLinksShiftToOppositeFace) {
  const Quadrature q(8, 0.3, 2.0, 2.0, 1);
  const TrackGenerator2D gen(q, box2(2.0, 2.0),
                             all_faces(LinkKind::kPeriodic));
  for (const auto& t : gen.tracks()) {
    ASSERT_GE(t.fwd_link.track, 0);
    // Periodic partners keep the same azimuthal angle.
    EXPECT_EQ(gen.track(t.fwd_link.track).azim, t.azim);
    const auto& t2 = gen.track(t.fwd_link.track);
    const Point2 entry = t.fwd_link.forward ? t2.start : t2.end;
    const bool x_face =
        t.fwd_link.face == Face::kXMin || t.fwd_link.face == Face::kXMax;
    if (x_face) {
      EXPECT_NEAR(std::abs(entry.x - t.end.x), gen.box().width_x(), 1e-6);
      EXPECT_NEAR(entry.y, t.end.y, 1e-6);
    } else {
      EXPECT_NEAR(std::abs(entry.y - t.end.y), gen.box().width_y(), 1e-6);
      EXPECT_NEAR(entry.x, t.end.x, 1e-6);
    }
  }
}

TEST(Generator2D, MixedFaceKinds) {
  // Reflective west/south, vacuum east/north (a quarter-core setup).
  const Quadrature q(8, 0.3, 2.0, 2.0, 1);
  const TrackGenerator2D gen(
      q, box2(2.0, 2.0),
      {LinkKind::kReflective, LinkKind::kVacuum, LinkKind::kReflective,
       LinkKind::kVacuum});
  int vacuum = 0, reflective = 0;
  for (const auto& t : gen.tracks()) {
    for (const TrackLink* l : {&t.fwd_link, &t.bwd_link}) {
      if (l->kind == LinkKind::kVacuum)
        ++vacuum;
      else {
        ++reflective;
        EXPECT_GE(l->track, 0);
      }
    }
  }
  EXPECT_GT(vacuum, 0);
  EXPECT_GT(reflective, 0);
}

// ------------------------------------------------------------- tracing ----

Geometry pin_geometry(double pitch, double r, int layers, double height) {
  GeometryBuilder b;
  const int circ = b.add_circle(0.0, 0.0, r);
  const int pin = b.add_universe("pin");
  b.add_cell(pin, "fuel", 0, {b.inside(circ)});
  b.add_cell(pin, "mod", 1, {b.outside(circ)});
  const int lat = b.add_lattice("root", 1, 1, pitch, pitch, 0.0, 0.0, {pin});
  b.set_root(lat);
  b.set_bounds(box2(pitch, pitch));
  b.add_axial_zone(0.0, height, layers);
  return b.build();
}

TEST(Generator2D, SegmentsTileEveryTrack) {
  const auto g = pin_geometry(1.26, 0.54, 1, 10.0);
  const Quadrature q(8, 0.1, 1.26, 1.26, 1);
  TrackGenerator2D gen(q, g.bounds(), all_faces(LinkKind::kReflective));
  gen.trace(g);
  EXPECT_GT(gen.num_segments(), gen.num_tracks());
  for (const auto& t : gen.tracks()) {
    double total = 0.0;
    for (const auto& s : t.segments) {
      EXPECT_GT(s.length, 0.0);
      EXPECT_GE(s.region, 0);
      total += s.length;
    }
    EXPECT_NEAR(total, t.length, 1e-8);
  }
}

TEST(Generator2D, RegionAreasMatchAnalytic) {
  const double pitch = 1.26, r = 0.54;
  const auto g = pin_geometry(pitch, r, 1, 10.0);
  const Quadrature q(32, 0.02, pitch, pitch, 1);
  TrackGenerator2D gen(q, g.bounds(), all_faces(LinkKind::kReflective));
  gen.trace(g);
  const auto areas = gen.region_areas(g.num_radial_regions());
  const int fuel = g.find_radial({pitch / 2, pitch / 2}).region;
  const int mod = g.find_radial({0.01, 0.01}).region;
  const double fuel_exact = kPi * r * r;
  EXPECT_NEAR(areas[fuel], fuel_exact, 0.01 * fuel_exact);
  EXPECT_NEAR(areas[fuel] + areas[mod], pitch * pitch,
              1e-6 * pitch * pitch);
}

// ----------------------------------------------------------- TrackStacks ---

struct StackFixture {
  Geometry g;
  Quadrature q;
  TrackGenerator2D gen;
  TrackStacks stacks;

  StackFixture(int nazim = 4, double spacing = 0.4, int npolar = 2,
               double z_spacing = 0.8, double height = 4.0,
               LinkKind radial = LinkKind::kReflective)
      : g(pin_geometry(1.26, 0.54, 4, height)),
        q(nazim, spacing, 1.26, 1.26, npolar),
        gen(q, g.bounds(), all_faces(radial)),
        stacks((gen.trace(g), gen), g, 0.0, height, z_spacing) {}
};

TEST(TrackStacks, DzDividesDomainHeight) {
  const StackFixture f(4, 0.4, 2, 0.7, 4.0);
  const double ratio = 4.0 / f.stacks.dz();
  EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
}

TEST(TrackStacks, IdInfoRoundTrip) {
  const StackFixture f;
  ASSERT_GT(f.stacks.num_tracks(), 0);
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const auto t = f.stacks.info(id);
    EXPECT_EQ(t.id, id);
    EXPECT_EQ(f.stacks.id(t.track2d, t.polar, t.up, t.zindex), id);
    EXPECT_LT(t.s_entry, t.s_exit);
    EXPECT_GE(t.s_entry, -1e-12);
    EXPECT_LE(t.s_exit, f.gen.track(t.track2d).length + 1e-12);
    // The track's occupied z-range stays inside the slab.
    EXPECT_GE(t.z_at(t.s_entry), -1e-9);
    EXPECT_LE(t.z_at(t.s_entry), 4.0 + 1e-9);
    EXPECT_GE(t.z_at(t.s_exit), -1e-9);
    EXPECT_LE(t.z_at(t.s_exit), 4.0 + 1e-9);
  }
}

TEST(TrackStacks, SegmentsSumToTrackLength) {
  const StackFixture f;
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const auto t = f.stacks.info(id);
    double total = 0.0;
    long count = 0;
    f.stacks.for_each_segment(id, true, [&](long fsr, double len) {
      EXPECT_GE(fsr, 0);
      EXPECT_LT(fsr, f.g.num_fsrs());
      EXPECT_GT(len, 0.0);
      total += len;
      ++count;
    });
    EXPECT_NEAR(total, t.length3d(), 1e-8) << "id=" << id;
    EXPECT_EQ(count, f.stacks.count_segments(id));
  }
}

TEST(TrackStacks, BackwardWalkIsReversedForward) {
  const StackFixture f;
  for (long id = 0; id < f.stacks.num_tracks(); id += 7) {
    const auto fwd = f.stacks.expand(id);
    std::vector<Segment3D> bwd;
    f.stacks.for_each_segment(id, false, [&](long fsr, double len) {
      bwd.push_back({fsr, len});
    });
    ASSERT_EQ(fwd.size(), bwd.size());
    for (std::size_t i = 0; i < fwd.size(); ++i) {
      EXPECT_EQ(fwd[i].fsr, bwd[bwd.size() - 1 - i].fsr);
      EXPECT_NEAR(fwd[i].length, bwd[bwd.size() - 1 - i].length, 1e-9);
    }
  }
}

TEST(TrackStacks, VolumeTilingProperty) {
  // Sum over all tracks and both sweep directions of
  // (solid angle / 4pi) * area * 3D length must equal the box volume.
  const StackFixture f(8, 0.15, 2, 0.25, 4.0);
  double volume = 0.0;
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const auto t = f.stacks.info(id);
    volume += 2.0 * f.stacks.direction_weight(id) / (4.0 * kPi) *
              f.stacks.track_area(id) * t.length3d();
  }
  const double exact = 1.26 * 1.26 * 4.0;
  EXPECT_NEAR(volume, exact, 0.02 * exact);
}

TEST(TrackStacks, FsrVolumesMatchAnalytic) {
  const StackFixture f(16, 0.05, 2, 0.1, 4.0);
  std::vector<double> vol(f.g.num_fsrs(), 0.0);
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const double w = 2.0 * f.stacks.direction_weight(id) / (4.0 * kPi) *
                     f.stacks.track_area(id);
    f.stacks.for_each_segment(id, true, [&](long fsr, double len) {
      vol[fsr] += w * len;
    });
  }
  const int fuel = f.g.find_radial({0.63, 0.63}).region;
  const double layer_h = 1.0;  // 4 cm / 4 layers
  const double fuel_exact = kPi * 0.54 * 0.54 * layer_h;
  for (int l = 0; l < 4; ++l)
    EXPECT_NEAR(vol[f.g.fsr_id(fuel, l)], fuel_exact, 0.03 * fuel_exact)
        << "layer " << l;
  double total = std::accumulate(vol.begin(), vol.end(), 0.0);
  EXPECT_NEAR(total, 1.26 * 1.26 * 4.0, 0.02 * 1.26 * 1.26 * 4.0);
}

TEST(TrackStacks, AxialReflectiveLinksAreExact) {
  const StackFixture f;
  int axial_links = 0;
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const auto t = f.stacks.info(id);
    const auto link = f.stacks.link(id, /*forward=*/true,
                                    LinkKind::kReflective,
                                    LinkKind::kReflective);
    if (t.s_exit >= f.gen.track(t.track2d).length - 1e-12) continue;
    // Axial exit: the continuation must start exactly at our exit point.
    ++axial_links;
    ASSERT_EQ(link.kind, Link3D::Kind::kLocal);
    const auto t2 = f.stacks.info(link.track);
    EXPECT_EQ(t2.track2d, t.track2d);
    EXPECT_EQ(t2.polar, t.polar);
    EXPECT_NE(t2.up, t.up);
    ASSERT_TRUE(link.forward);
    // Forward sweep of the target starts at its s_entry.
    EXPECT_NEAR(t2.s_entry, t.s_exit, 1e-9);
    EXPECT_NEAR(t2.z_at(t2.s_entry), t.z_at(t.s_exit), 1e-9);
  }
  EXPECT_GT(axial_links, 0);
}

TEST(TrackStacks, VacuumZFaceKillsAxialLinks) {
  const StackFixture f;
  for (long id = 0; id < f.stacks.num_tracks(); id += 3) {
    const auto t = f.stacks.info(id);
    if (t.s_exit >= f.gen.track(t.track2d).length - 1e-12) continue;
    const auto link = f.stacks.link(id, true, LinkKind::kVacuum,
                                    LinkKind::kVacuum);
    EXPECT_EQ(link.kind, Link3D::Kind::kVacuum);
  }
}

TEST(TrackStacks, RadialLinkTargetsMatchingDirection) {
  const StackFixture f;
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const auto t = f.stacks.info(id);
    if (t.s_exit < f.gen.track(t.track2d).length - 1e-12) continue;
    const auto link = f.stacks.link(id, true, LinkKind::kReflective,
                                    LinkKind::kReflective);
    ASSERT_EQ(link.kind, Link3D::Kind::kLocal);
    const auto t2 = f.stacks.info(link.track);
    // Vertical direction is preserved across a radial reflection:
    // if we enter the target forward it must be an up-stack exactly when
    // we are up; entered backward, the opposite stack.
    if (link.forward) {
      EXPECT_EQ(t2.up, t.up);
    } else {
      EXPECT_NE(t2.up, t.up);
    }
    // z continuity within the lattice quantization.
    const double z_exit = t.z_at(t.s_exit);
    const double z_entry =
        link.forward ? t2.z_at(t2.s_entry) : t2.z_at(t2.s_exit);
    EXPECT_NEAR(z_entry, z_exit, f.stacks.dz());
  }
}

TEST(TrackStacks, ZPeriodicLinksWrap) {
  const StackFixture f;
  int wraps = 0;
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const auto t = f.stacks.info(id);
    if (t.s_exit >= f.gen.track(t.track2d).length - 1e-12) continue;
    const auto link = f.stacks.link(id, true, LinkKind::kPeriodic,
                                    LinkKind::kPeriodic);
    ASSERT_EQ(link.kind, Link3D::Kind::kLocal);
    const auto t2 = f.stacks.info(link.track);
    EXPECT_EQ(t2.up, t.up);  // periodic keeps the vertical direction
    ++wraps;
  }
  EXPECT_GT(wraps, 0);
}

TEST(TrackStacks, ZInterfaceLinksMarkNeighborFace) {
  const StackFixture f;
  for (long id = 0; id < f.stacks.num_tracks(); ++id) {
    const auto t = f.stacks.info(id);
    if (t.s_exit >= f.gen.track(t.track2d).length - 1e-12) continue;
    const auto link = f.stacks.link(id, true, LinkKind::kInterface,
                                    LinkKind::kInterface);
    EXPECT_EQ(link.kind, Link3D::Kind::kInterface);
    EXPECT_EQ(link.face, t.up ? Face::kZMax : Face::kZMin);
    EXPECT_GE(link.track, 0);
    EXPECT_LT(link.track, f.stacks.num_tracks());
  }
}

TEST(TrackStacks, TotalSegmentsPositiveAndConsistent) {
  const StackFixture f;
  const long total = f.stacks.total_segments();
  long manual = 0;
  for (long id = 0; id < f.stacks.num_tracks(); ++id)
    manual += static_cast<long>(f.stacks.expand(id).size());
  EXPECT_EQ(total, manual);
  EXPECT_GT(total, f.stacks.num_tracks());
}

TEST(TrackStacks, RequiresTracedGenerator) {
  const auto g = pin_geometry(1.26, 0.54, 2, 2.0);
  const Quadrature q(4, 0.5, 1.26, 1.26, 1);
  TrackGenerator2D gen(q, g.bounds(), all_faces(LinkKind::kVacuum));
  EXPECT_THROW(TrackStacks(gen, g, 0.0, 2.0, 0.5), Error);
}

}  // namespace
}  // namespace antmoc
