#include <gtest/gtest.h>

#include "geometry/builder.h"
#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/solver2d.h"
#include "util/error.h"

namespace antmoc {
namespace {

/// Single-layer pin cell for 2D solves (reflective everywhere).
models::C5G7Model pin_2d() { return models::build_pin_cell(1, 1.0); }

struct Laydown {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;

  Laydown(models::C5G7Model m, int nazim, double spacing, int npolar)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(),
            {LinkKind::kReflective, LinkKind::kReflective,
             LinkKind::kReflective, LinkKind::kReflective}) {
    gen.trace(model.geometry);
  }
};

TEST(Solver2D, InfiniteMediumReproducesAnalyticK) {
  GeometryBuilder b;
  const int u = b.add_universe("medium");
  b.add_cell(u, "fuel", c5g7::kUO2, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.add_axial_zone(0.0, 1.0, 1);
  Laydown l({b.build(), c5g7::materials()}, 4, 0.3, 2);

  Solver2D solver(l.gen, l.model.geometry, l.model.materials);
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 20000;
  const auto result = solver.solve(opts);
  ASSERT_TRUE(result.converged);
  const double k_exact = infinite_medium_k(l.model.materials[c5g7::kUO2]);
  EXPECT_NEAR(result.k_eff, k_exact, 1e-4 * k_exact);
}

TEST(Solver2D, MatchesAxiallyUniform3DSolve) {
  // An axially uniform problem with reflective z faces is physically 2D;
  // the 3D solver's exact axial reflective links make its solution
  // z-independent, so the two answers must agree to solver precision.
  Laydown l(pin_2d(), 8, 0.15, 2);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  Solver2D two_d(l.gen, l.model.geometry, l.model.materials);
  const auto r2 = two_d.solve(opts);

  const TrackStacks stacks(l.gen, l.model.geometry, 0.0, 1.0, 0.5);
  CpuSolver three_d(stacks, l.model.materials);
  const auto r3 = three_d.solve(opts);

  ASSERT_TRUE(r2.converged);
  ASSERT_TRUE(r3.converged);
  EXPECT_NEAR(r2.k_eff, r3.k_eff, 3e-4 * r3.k_eff)
      << "2D " << r2.k_eff << " vs 3D " << r3.k_eff;

  // Scalar flux spectra agree region by region (normalized).
  for (int r = 0; r < l.model.geometry.num_radial_regions(); ++r) {
    double n2 = 0.0, n3 = 0.0;
    for (int g = 0; g < 7; ++g) {
      n2 += two_d.fsr().flux(r, g);
      n3 += three_d.fsr().flux(r, g);
    }
    for (int g = 0; g < 7; ++g)
      EXPECT_NEAR(two_d.fsr().flux(r, g) / n2,
                  three_d.fsr().flux(r, g) / n3, 2e-3)
          << "region " << r << " group " << g;
  }
}

TEST(Solver2D, PinKMatchesExpectedRange) {
  Laydown l(pin_2d(), 8, 0.1, 3);
  Solver2D solver(l.gen, l.model.geometry, l.model.materials);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;
  const auto result = solver.solve(opts);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.k_eff, 1.25);
  EXPECT_LT(result.k_eff, 1.40);
}

TEST(Solver2D, AreasMatchAnalytic) {
  Laydown l(pin_2d(), 16, 0.03, 1);
  Solver2D solver(l.gen, l.model.geometry, l.model.materials);
  SolveOptions opts;
  opts.fixed_iterations = 1;
  solver.solve(opts);
  const auto& areas = solver.fsr().volumes();
  const int fuel = l.model.geometry.find_radial({0.63, 0.63}).region;
  const double exact = 3.14159265358979 * 0.54 * 0.54;
  EXPECT_NEAR(areas[fuel], exact, 0.01 * exact);
}

TEST(Solver2D, RejectsMultiLayerGeometry) {
  Laydown l(models::build_pin_cell(3, 3.0), 4, 0.3, 1);
  EXPECT_THROW(Solver2D(l.gen, l.model.geometry, l.model.materials),
               Error);
}

TEST(Solver2D, RejectsUntracedGenerator) {
  const auto model = pin_2d();
  const Quadrature quad(4, 0.3, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, model.geometry.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  EXPECT_THROW(Solver2D(gen, model.geometry, model.materials), Error);
}

}  // namespace
}  // namespace antmoc
