#include <gtest/gtest.h>

#include <cmath>

#include "models/c5g7_model.h"
#include "track/quadrature.h"
#include "util/config.h"
#include "util/error.h"
#include "util/rng.h"

namespace antmoc {
namespace {

// ----------------------------------------------------------- config fuzz ---

TEST(ConfigFuzz, RandomInputNeverCrashes) {
  // Random printable garbage must either parse or throw ConfigError —
  // never crash or hang.
  Rng rng(2024);
  const std::string alphabet =
      "abc: 123.#[]\"-\n\t xyz_", quote = "\"";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const int len = 1 + static_cast<int>(rng.next_below(120));
    for (int i = 0; i < len; ++i)
      text += alphabet[rng.next_below(alphabet.size())];
    try {
      const auto cfg = Config::parse(text);
      for (const auto& key : cfg.keys()) {
        // Typed getters must also be total (value or ConfigError).
        try {
          (void)cfg.get_double(key);
        } catch (const ConfigError&) {
        }
        try {
          (void)cfg.get_int_list(key);
        } catch (const ConfigError&) {
        }
      }
    } catch (const ConfigError&) {
      // fine
    }
  }
}

TEST(ConfigFuzz, DeepValuesRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const double v = rng.uniform(-1e6, 1e6);
    char buf[64];
    std::snprintf(buf, sizeof buf, "x: %.17g\n", v);
    EXPECT_DOUBLE_EQ(Config::parse(buf).get_double("x"), v);
  }
}

// ------------------------------------------------------- geometry probing ---

TEST(GeometryFuzz, FindAndDistanceAgreeOnRandomRays) {
  // Property: stepping exactly distance_to_boundary along a ray either
  // leaves the geometry or lands in a region reachable from the first —
  // and re-finding a midpoint before the boundary gives the same region.
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.height_scale = 0.05;
  const auto model = models::build_core(opt);
  const Geometry& g = model.geometry;
  const Bounds& b = g.bounds();

  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const Point2 p{rng.uniform(b.x_min + 1e-6, b.x_max - 1e-6),
                   rng.uniform(b.y_min + 1e-6, b.y_max - 1e-6)};
    const double phi = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double ux = std::cos(phi), uy = std::sin(phi);

    const int region = g.find_radial(p).region;
    ASSERT_GE(region, 0);
    const double d = g.distance_to_boundary(p, ux, uy);
    ASSERT_GT(d, 0.0);

    // Any midpoint strictly before the boundary is still in the region.
    const double t = 0.5 * std::min(d, 1e6);
    const Point2 mid{p.x + ux * t, p.y + uy * t};
    if (b.contains_xy(mid, -1e-9)) {
      EXPECT_EQ(g.find_radial(mid).region, region)
          << "trial " << trial << " at (" << p.x << "," << p.y << ") phi "
          << phi;
    }
  }
}

TEST(GeometryFuzz, LayerLookupMatchesBounds) {
  models::C5G7Options small_core;
  small_core.pins_per_assembly = 3;
  const auto model = models::build_core(small_core);
  const Geometry& g = model.geometry;
  Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    const double z =
        rng.uniform(g.bounds().z_min + 1e-9, g.bounds().z_max - 1e-9);
    const int layer = g.layer_at(z);
    EXPECT_GE(z, g.layer_z_lo(layer) - 1e-9);
    EXPECT_LE(z, g.layer_z_hi(layer) + 1e-9);
  }
}

// ----------------------------------------------------- quadrature moments ---

TEST(QuadratureMoments, PolarSetsIntegrateEvenMoments) {
  // Gauss-Legendre polar sets must integrate mu^2 over the hemisphere to
  // 1/3 (the diffusion-coefficient moment) and mu^0 to 1.
  for (int np : {4, 5, 6, 8}) {
    const Quadrature q(4, 0.5, 1.0, 1.0, np);
    double m0 = 0.0, m2 = 0.0;
    for (int p = 0; p < np; ++p) {
      m0 += q.polar_frac(p);
      m2 += q.polar_frac(p) * q.cos_theta(p) * q.cos_theta(p);
    }
    EXPECT_NEAR(m0, 1.0, 1e-12) << np;
    EXPECT_NEAR(m2, 1.0 / 3.0, 1e-12) << np;
  }
  // Tabuchi-Yamamoto sets trade exact mu^2 for better MOC accuracy; they
  // must still be close.
  for (int np : {2, 3}) {
    const Quadrature q(4, 0.5, 1.0, 1.0, np);
    double m2 = 0.0;
    for (int p = 0; p < np; ++p)
      m2 += q.polar_frac(p) * q.cos_theta(p) * q.cos_theta(p);
    EXPECT_NEAR(m2, 1.0 / 3.0, 0.05) << np;
  }
}

TEST(QuadratureMoments, AzimuthalFirstMomentVanishes) {
  // Sum over all 4 direction images of (cos phi) weighted by solid angle
  // is zero by symmetry — forward/backward cancel exactly.
  const Quadrature q(16, 0.2, 2.0, 3.0, 2);
  double mx = 0.0;
  for (int a = 0; a < q.num_azim_2(); ++a)
    for (int p = 0; p < q.num_polar(); ++p) {
      const double w = q.direction_weight(a, p) * q.sin_theta(p);
      mx += w * std::cos(q.phi(a));                    // (phi, +mu)
      mx += w * std::cos(q.phi(a) + 3.14159265358979); // (phi+pi, -mu)
      mx += w * std::cos(q.phi(a));                    // (phi, -mu)
      mx += w * std::cos(q.phi(a) + 3.14159265358979); // (phi+pi, +mu)
    }
  EXPECT_NEAR(mx, 0.0, 1e-9);
}

}  // namespace
}  // namespace antmoc
