#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/runtime.h"
#include "fault/fault.h"
#include "util/error.h"
#include "util/rng.h"

namespace antmoc {
namespace {

using comm::CommOptions;
using comm::Communicator;
using comm::Request;
using comm::Runtime;

// Seeded fuzz of the point-to-point layer: random mixes of blocking and
// nonblocking operations, shuffled per-rank orders, unique tags, payload
// sizes down to zero-length. Runs under the tsan preset (`ctest -L fault`)
// so races between mailboxes, requests, and the poison path surface.

struct Msg {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::size_t size = 0;
};

/// Deterministic payload: byte i of message (src, tag) is a function of
/// all three, so any cross-matched delivery is caught by content checks.
std::vector<std::uint8_t> payload_for(const Msg& m) {
  std::vector<std::uint8_t> p(m.size);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::uint8_t>(m.src * 131 + m.tag * 31 + i);
  return p;
}

/// Global message plan for one seed: every ordered rank pair carries
/// several messages with unique tags and a spread of sizes.
std::vector<Msg> build_plan(std::uint64_t seed, int nranks) {
  const std::size_t sizes[] = {0, 1, 7, 64, 1000};
  Rng rng(seed);
  std::vector<Msg> plan;
  int tag = 100;
  for (int s = 0; s < nranks; ++s)
    for (int d = 0; d < nranks; ++d) {
      if (s == d) continue;
      const int count = 2 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < count; ++i)
        plan.push_back({s, d, tag++, sizes[rng.next_below(5)]});
    }
  return plan;
}

template <class T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1], v[rng.next_below(i)]);
}

void run_seed(std::uint64_t seed, int nranks) {
  const std::vector<Msg> plan = build_plan(seed, nranks);
  Runtime::run(nranks, [&](Communicator& comm) {
    Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (comm.rank() + 1)));

    // Post every outgoing message first (sends are buffered and never
    // block, so ordering between ranks cannot deadlock), in a shuffled
    // order and via a random mix of send/isend.
    std::vector<Msg> outgoing;
    for (const Msg& m : plan)
      if (m.src == comm.rank()) outgoing.push_back(m);
    shuffle(outgoing, rng);
    std::vector<Request> send_reqs;
    for (const Msg& m : outgoing) {
      const auto p = payload_for(m);
      if (rng.next_below(2) == 0)
        comm.send(m.dst, m.tag, p.data(), p.size());
      else
        send_reqs.push_back(comm.isend(m.dst, m.tag, p.data(), p.size()));
    }

    // Collect incoming messages in a shuffled order. Roughly half go
    // through blocking recv; the rest are posted as irecvs and drained
    // with wait_any in whatever order they surface.
    std::vector<Msg> incoming;
    for (const Msg& m : plan)
      if (m.dst == comm.rank()) incoming.push_back(m);
    shuffle(incoming, rng);

    std::vector<Request> recv_reqs;
    std::vector<const Msg*> posted;
    std::vector<std::vector<std::uint8_t>> buffers(incoming.size());
    std::size_t b = 0;
    for (const Msg& m : incoming) {
      if (rng.next_below(2) == 0) {
        std::vector<std::uint8_t> in;
        comm.recv(m.src, m.tag, in);
        EXPECT_EQ(in, payload_for(m))
            << "seed " << seed << " msg (" << m.src << "->" << m.dst
            << " tag " << m.tag << ")";
      } else {
        recv_reqs.push_back(comm.irecv(m.src, m.tag, buffers[b]));
        posted.push_back(&m);
        ++b;
      }
    }
    int drained = 0;
    while (true) {
      const int idx = comm.wait_any(recv_reqs);
      if (idx < 0) break;
      ++drained;
      const Msg& m = *posted[idx];
      EXPECT_TRUE(recv_reqs[idx].done());
      EXPECT_EQ(recv_reqs[idx].bytes(), m.size);
      EXPECT_EQ(buffers[idx], payload_for(m))
          << "seed " << seed << " msg (" << m.src << "->" << m.dst
          << " tag " << m.tag << ")";
    }
    EXPECT_EQ(drained, static_cast<int>(recv_reqs.size()));
    comm.wait_all(send_reqs);
    comm.barrier();
  });
}

TEST(CommFuzz, SeededMixedTrafficDeliversEveryPayload) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) run_seed(seed, 4);
}

TEST(CommFuzz, TwoRankWorldsSurviveTheSameMixes) {
  for (std::uint64_t seed : {11u, 12u, 13u}) run_seed(seed, 2);
}

// ------------------------------------------------ deadline interleavings ---

TEST(CommFuzz, WaitOnNeverSentMessageHonorsDeadline) {
  CommOptions opts;
  opts.deadline = std::chrono::milliseconds(100);
  Runtime::run(
      2,
      [](Communicator& comm) {
        if (comm.rank() != 0) return;
        std::vector<double> in;
        Request r = comm.irecv(1, /*tag=*/7, in);
        EXPECT_THROW(comm.wait(r), CommTimeout);
      },
      opts);
}

TEST(CommFuzz, WaitAnyCompletesSentRequestsBeforeDeadlineFires) {
  // One request is satisfiable, one never will be: wait_any must surface
  // the live one first, then time out on the dead one.
  CommOptions opts;
  opts.deadline = std::chrono::milliseconds(200);
  Runtime::run(
      2,
      [](Communicator& comm) {
        if (comm.rank() == 1) {
          const std::vector<double> out{4.0, 5.0};
          comm.send(0, /*tag=*/1, out);
          return;
        }
        std::vector<double> live, dead;
        std::vector<Request> reqs;
        reqs.push_back(comm.irecv(1, /*tag=*/1, live));
        reqs.push_back(comm.irecv(1, /*tag=*/2, dead));
        const int idx = comm.wait_any(reqs);
        EXPECT_EQ(idx, 0);
        EXPECT_EQ(live, (std::vector<double>{4.0, 5.0}));
        EXPECT_THROW(comm.wait_any(reqs), CommTimeout);
      },
      opts);
}

// -------------------------------------------- poisoned-world interleavings ---

TEST(CommFuzz, RankDeathWakesWaitAny) {
  EXPECT_THROW(
      Runtime::run(3,
                   [](Communicator& comm) {
                     if (comm.rank() == 1) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(50));
                       fail<SolverError>("rank 1 died mid-exchange");
                     }
                     std::vector<double> in;
                     std::vector<Request> reqs;
                     reqs.push_back(comm.irecv(1, /*tag=*/3, in));
                     comm.wait_any(reqs);  // wakes with PeerFailure
                   }),
      SolverError);
}

TEST(CommFuzz, PoisonedWorldFailsNewNonblockingOps) {
  const auto world = [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> in;
      Request r;
      try {
        // Wait until rank 1's failure poisons the world, then verify
        // every nonblocking entry point refuses to proceed.
        for (;;) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          r = comm.irecv(1, /*tag=*/9, in);
          comm.test(r);
        }
      } catch (const PeerFailure&) {
      }
      const std::vector<double> out{1.0};
      EXPECT_THROW(comm.isend(1, /*tag=*/9, out), PeerFailure);
      EXPECT_THROW(comm.irecv(1, /*tag=*/9, in), PeerFailure);
      return;
    }
    throw PeerFailure("rank 1 aborts");
  };
  // Rank 1's PeerFailure is the only recorded failure, so run() rethrows
  // it; rank 0's assertions all ran before that.
  EXPECT_THROW(Runtime::run(2, world), PeerFailure);
}

TEST(CommFuzz, NoLeakedRequestHandlesAfterPoisonedWakeup) {
  // A takeover shrinks the world while irecvs are still in flight; the
  // abandoned handles must release their outstanding-request claims when
  // dropped, or every takeover would leak bookkeeping (and the failure
  // diagnostics' outstanding count would grow without bound).
  EXPECT_THROW(
      Runtime::run(3,
                   [](Communicator& comm) {
                     if (comm.rank() == 1) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(30));
                       fail<SolverError>("rank 1 died mid-exchange");
                     }
                     std::vector<double> in_a, in_b;
                     {
                       std::vector<Request> reqs;
                       reqs.push_back(comm.irecv(1, /*tag=*/3, in_a));
                       reqs.push_back(comm.irecv(1, /*tag=*/4, in_b));
                       EXPECT_EQ(comm.outstanding_requests(), 2);
                       EXPECT_THROW(comm.wait_all(reqs), PeerFailure);
                     }  // handles dropped exactly as a takeover drops them
                     EXPECT_EQ(comm.outstanding_requests(), 0);
                   }),
      SolverError);
}

// --------------------------------------------------- fault-point coverage ---

TEST(CommFuzz, FaultPointsCoverNonblockingPrimitives) {
  {
    fault::ScopedPlan plan("comm.isend throw comm rank=1");
    EXPECT_THROW(Runtime::run(2,
                              [](Communicator& comm) {
                                std::vector<double> v{1.0};
                                if (comm.rank() == 1)
                                  comm.isend(0, 5, v);
                                else
                                  comm.recv(1, 5, v);
                              }),
                 CommTimeout);
  }
  {
    fault::ScopedPlan plan("comm.wait throw comm rank=0");
    EXPECT_THROW(Runtime::run(2,
                              [](Communicator& comm) {
                                std::vector<double> v{1.0};
                                if (comm.rank() == 1) {
                                  comm.send(0, 5, v);
                                } else {
                                  std::vector<Request> reqs;
                                  reqs.push_back(comm.irecv(1, 5, v));
                                  comm.wait_any(reqs);
                                }
                              }),
                 CommTimeout);
  }
}

}  // namespace
}  // namespace antmoc
