#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "geometry/builder.h"
#include "gpusim/atomic.h"
#include "gpusim/thread_pool.h"
#include "models/c5g7_model.h"
#include "solver/domain_solver.h"
#include "util/error.h"
#include "util/log.h"

namespace antmoc {
namespace {

// ------------------------------------------------------- thread pool ----

TEST(ThreadPoolStress, ManyConsecutiveJobsStayCorrect) {
  gpusim::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  long total = 0;
  for (int round = 0; round < 200; ++round) {
    std::array<long, 4> partial{};
    pool.run([&](unsigned w) { partial[w] = w + round; });
    for (long p : partial) total += p;
  }
  // Sum of (w + round) over w in [0,4), round in [0,200).
  long expected = 0;
  for (int round = 0; round < 200; ++round)
    for (int w = 0; w < 4; ++w) expected += w + round;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolStress, WorkerExceptionsAreRethrown) {
  gpusim::ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.run([&](unsigned w) {
                   if (w == static_cast<unsigned>(round % 3))
                     fail<SolverError>("worker fault");
                 }),
                 SolverError);
    // The pool survives and keeps executing.
    int ok = 0;
    pool.run([&](unsigned) { gpusim::device_atomic_add(ok, 1); });
    EXPECT_EQ(ok, 3);
  }
}

// ------------------------------------------------------------- logging ----

TEST(Logging, FileSinkCapturesMessages) {
  const std::string path = ::testing::TempDir() + "/antmoc_log.txt";
  std::remove(path.c_str());
  log::set_file(path);
  log::info("stage: track generation took ", 1.5, " s");
  log::warn("stage: sweep saw ", 3, " temporary tracks");
  log::set_file("");  // restore stderr

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("track generation took 1.5 s"), std::string::npos);
  EXPECT_NE(text.find("WARN"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Logging, LevelsFilter) {
  const std::string path = ::testing::TempDir() + "/antmoc_lvl.txt";
  std::remove(path.c_str());
  log::set_file(path);
  log::set_level(log::Level::kError);
  log::info("should be dropped");
  log::error("should appear");
  log::set_level(log::Level::kInfo);
  log::set_file("");
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("should appear"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------- geometry edges ----

TEST(GeometryEdge, GapInCsgModelIsReportedNotMislocated) {
  // Two disjoint circles leave a gap in the universe: tracing must throw
  // a GeometryError naming the universe, not return a wrong region.
  GeometryBuilder b;
  const int c1 = b.add_circle(-0.3, 0.0, 0.2);
  const int c2 = b.add_circle(0.3, 0.0, 0.2);
  const int u = b.add_universe("gappy");
  b.add_cell(u, "left", 0, {b.inside(c1)});
  b.add_cell(u, "right", 0, {b.inside(c2)});
  const int root = b.add_lattice("root", 1, 1, 2.0, 2.0, -1.0, -1.0, {u});
  b.set_root(root);
  Bounds bounds;
  bounds.x_min = -1.0;
  bounds.x_max = 1.0;
  bounds.y_min = -1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 1.0, 1);
  const auto g = b.build();
  EXPECT_EQ(g.find_radial({-0.3, 0.0}).region, 0);
  try {
    g.find_radial({0.0, 0.9});
    FAIL() << "gap point did not throw";
  } catch (const GeometryError& e) {
    EXPECT_NE(std::string(e.what()).find("gappy"), std::string::npos);
  }
}

TEST(GeometryEdge, ZeroThicknessZoneRejected) {
  GeometryBuilder b;
  EXPECT_THROW(b.add_axial_zone(1.0, 1.0, 1), Error);
  EXPECT_THROW(b.add_axial_zone(1.0, 0.5, 1), Error);
}

TEST(GeometryEdge, TinyGeometryStillTraces) {
  // A 1 mm pin cell: absolute tolerances must not swallow the geometry.
  GeometryBuilder b;
  const int pin = b.add_pin_universe("p", 0, 1, 0.04);
  const int root = b.add_lattice("r", 1, 1, 0.1, 0.1, 0.0, 0.0, {pin});
  b.set_root(root);
  Bounds bounds;
  bounds.x_max = 0.1;
  bounds.y_max = 0.1;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.add_axial_zone(0.0, 0.1, 1);
  const auto g = b.build();
  const Quadrature q(4, 0.02, 0.1, 0.1, 1);
  TrackGenerator2D gen(q, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  EXPECT_GT(gen.num_segments(), 0);
  const auto areas = gen.region_areas(g.num_radial_regions());
  double total = 0.0;
  for (double a : areas) total += a;
  EXPECT_NEAR(total, 0.01, 1e-4);
}

// -------------------------------------------------- failure injection ----

TEST(FailureInjection, DeviceOomMidSetupLeavesArenaConsistent) {
  // A heavily subdivided pin makes 3D segments dominate the footprint, so
  // EXP blows the capacity that OTF fits into.
  GeometryBuilder b;
  PinSubdivision sub;
  sub.fuel_rings = 3;
  sub.fuel_sectors = 8;
  sub.moderator_sectors = 8;
  const int pin = b.add_pin_universe("pin", 0, 6, 0.54, sub);
  const int root = b.add_lattice("r", 1, 1, 1.26, 1.26, 0.0, 0.0, {pin});
  b.set_root(root);
  Bounds bounds;
  bounds.x_max = 1.26;
  bounds.y_max = 1.26;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.set_boundary(Face::kZMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMax, BoundaryType::kReflective);
  b.add_axial_zone(0.0, 2.0, 4);
  models::C5G7Model model{b.build(),
                          models::build_pin_cell(1, 1.0).materials};

  const Quadrature quad(8, 0.1, 1.26, 1.26, 2);
  TrackGenerator2D gen(quad, model.geometry.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(model.geometry);
  const TrackStacks stacks(gen, model.geometry, 0.0, 2.0, 0.25);

  // OTF needs ~585 KiB here, EXP ~906 KiB: 700 KiB splits them.
  gpusim::Device device(gpusim::DeviceSpec::scaled(700 << 10, 8));
  GpuSolverOptions opts;
  opts.policy = TrackPolicy::kExplicit;
  const std::size_t used_before = device.memory().used();
  EXPECT_THROW(GpuSolver(stacks, model.materials, device, opts),
               DeviceOutOfMemory);
  // Every charge taken during the failed construction must be released.
  EXPECT_EQ(device.memory().used(), used_before);
  // The device is still usable for a policy that fits.
  opts.policy = TrackPolicy::kOnTheFly;
  EXPECT_NO_THROW(GpuSolver(stacks, model.materials, device, opts));
}

TEST(FailureInjection, DomainRankErrorPropagatesToCaller) {
  // A solver error inside one decomposed rank must surface in the calling
  // thread as an exception, not hang or abort the process. A non-fissile
  // core makes every rank fail identically (so no rank blocks on a peer).
  GeometryBuilder b;
  const int u = b.add_universe("water");
  b.add_cell(u, "w", 6, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 2.0;
  bounds.y_max = 2.0;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.add_axial_zone(0.0, 2.0, 2);
  models::C5G7Model model{b.build(), models::build_pin_cell(1, 1.0).materials};

  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.5;
  params.num_polar = 1;
  params.z_spacing = 1.0;
  EXPECT_THROW(solve_decomposed(model.geometry, model.materials,
                                {2, 2, 1}, params, SolveOptions{}),
               Error);
}

}  // namespace
}  // namespace antmoc
