/// \file cmfd_test.cpp
/// CMFD acceleration battery (DESIGN.md §14): the accelerated solver must
/// reproduce the unaccelerated k_eff within a few pcm while cutting the
/// outer-iteration count by at least 3x on the gated C5G7 core; with the
/// accelerator instrumented but never prolonging, results must be bitwise
/// identical to the plain solver (the sweep-side tallies only *read* the
/// angular flux); and a divergence/fault degrade must land bitwise on the
/// plain-iteration answer.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "cmfd/cmfd.h"
#include "fault/fault.h"
#include "models/c5g7_model.h"
#include "perfmodel/perfmodel.h"
#include "solver/cpu_solver.h"
#include "track/generator2d.h"
#include "track/track3d.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

/// The gate problem: a scaled C5G7 core large enough that plain power
/// iteration needs hundreds of sweeps (dominance ratio close to 1).
Problem gate_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 5;
  opt.fuel_layers = 3;
  opt.reflector_layers = 1;
  opt.height_scale = 0.15;
  return Problem(models::build_core(opt), 4, 0.3, 2, 0.75);
}

SolveOptions gate_options() {
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 2000;
  return opts;
}

void expect_bitwise_flux(const TransportSolver& a, const TransportSolver& b) {
  const auto& fa = a.fsr().scalar_flux();
  const auto& fb = b.fsr().scalar_flux();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]) << i;
}

// ------------------------------------------------------- coarse mesh ------

TEST(CoarseMesh, PinOverlayCoversEveryFsr) {
  Problem p = gate_problem();
  const cmfd::CoarseMesh mesh(p.model.geometry, cmfd::MeshSpec{});
  ASSERT_TRUE(mesh.grid());
  EXPECT_GT(mesh.num_cells(), 1);
  EXPECT_LE(mesh.num_cells(), mesh.nx() * mesh.ny() * mesh.nz());
  for (long r = 0; r < p.model.geometry.num_fsrs(); ++r) {
    const int c = mesh.cell_of(r);
    ASSERT_GE(c, 0) << "fsr " << r;
    ASSERT_LT(c, mesh.num_cells()) << "fsr " << r;
  }
}

TEST(CoarseMesh, FacesAreInteriorAndOriented) {
  Problem p = gate_problem();
  const cmfd::CoarseMesh mesh(p.model.geometry, cmfd::MeshSpec{});
  ASSERT_GT(mesh.num_faces(), 0);
  for (const auto& f : mesh.faces()) {
    EXPECT_GE(f.a, 0);
    EXPECT_LT(f.a, f.b);
    EXPECT_LT(f.b, mesh.num_cells());
    EXPECT_GT(f.area, 0.0);
    EXPECT_GT(f.ha, 0.0);
    EXPECT_GT(f.hb, 0.0);
    // The slot query must agree with the face table in both orientations.
    EXPECT_GE(mesh.slot_between(f.a, f.b), 0);
    EXPECT_GE(mesh.slot_between(f.b, f.a), 0);
    EXPECT_NE(mesh.slot_between(f.a, f.b), mesh.slot_between(f.b, f.a));
  }
  EXPECT_EQ(mesh.num_slots(),
            mesh.num_faces() * 2 + mesh.num_cells() * 2L);
}

TEST(CrossingPlan, EveryTrackDirectionEntersAndExits) {
  Problem p = gate_problem();
  const cmfd::CoarseMesh mesh(p.model.geometry, cmfd::MeshSpec{});
  const cmfd::CrossingPlan plan(p.stacks, mesh, LinkKind::kReflective,
                                LinkKind::kReflective);
  EXPECT_GT(plan.num_records(), 0);
  for (long id = 0; id < p.stacks.num_tracks(); ++id)
    for (int dir = 0; dir < 2; ++dir) {
      const cmfd::Crossing* begin = nullptr;
      const cmfd::Crossing* end = nullptr;
      plan.records(id, dir, begin, end);
      if (begin == end) continue;  // empty track
      EXPECT_EQ(begin->ordinal, 0);  // entry tally
      EXPECT_GE(plan.first_cell(id, dir), 0);
      for (const cmfd::Crossing* c = begin; c != end; ++c) {
        EXPECT_GE(c->slot, 0);
        EXPECT_LT(c->slot, mesh.num_slots());
        if (c + 1 != end) EXPECT_LE(c->ordinal, (c + 1)->ordinal);
      }
    }
}

// ----------------------------------------------------- headline gates ------

TEST(CmfdAcceleration, MatchesPlainKeffAndCutsOuterIterations) {
  const SolveOptions opts = gate_options();

  Problem plain_p = gate_problem();
  CpuSolver plain(plain_p.stacks, plain_p.model.materials, 1);
  const SolveResult r0 = plain.solve(opts);
  ASSERT_TRUE(r0.converged);

  Problem acc_p = gate_problem();
  CpuSolver acc(acc_p.stacks, acc_p.model.materials, 1);
  cmfd::CmfdOptions co;
  co.enable = true;
  acc.enable_cmfd(co);
  const SolveResult r1 = acc.solve(opts);
  ASSERT_TRUE(r1.converged);

  EXPECT_FALSE(acc.cmfd_accel()->degraded());
  EXPECT_GT(acc.cmfd_accel()->accelerations(), 0);
  // k agreement: the accelerator changes the iteration path, not the
  // fixed point — 5 pcm covers the different convergence stopping points.
  EXPECT_NEAR(r1.k_eff, r0.k_eff, 5e-5);
  // The headline gate: at least 3x fewer transport sweeps (measured ~6.8x).
  EXPECT_LE(r1.iterations * 3, r0.iterations);
}

TEST(CmfdAcceleration, InstrumentedButNeverProlongingIsBitwiseIdentical) {
  // With start_iteration beyond the solve, the tallies run every sweep but
  // accelerate() never mutates flux, psi or k: results must be bitwise
  // identical to a solver with no accelerator at all. This pins the
  // determinism contract that the sweep-side instrumentation only reads
  // the angular flux — and therefore that cmfd.enable=off (which skips
  // the instrumentation entirely) is bitwise identical to the pre-CMFD
  // solver.
  SolveOptions opts = gate_options();
  opts.max_iterations = 40;
  opts.tolerance = 0.0;

  Problem plain_p = gate_problem();
  CpuSolver plain(plain_p.stacks, plain_p.model.materials, 2);
  const SolveResult r0 = plain.solve(opts);

  Problem acc_p = gate_problem();
  CpuSolver acc(acc_p.stacks, acc_p.model.materials, 2);
  cmfd::CmfdOptions co;
  co.enable = true;
  co.start_iteration = 1000000;
  acc.enable_cmfd(co);
  const SolveResult r1 = acc.solve(opts);

  EXPECT_EQ(r1.k_eff, r0.k_eff);
  EXPECT_EQ(r1.iterations, r0.iterations);
  EXPECT_EQ(r1.residual, r0.residual);
  expect_bitwise_flux(acc, plain);
  EXPECT_EQ(acc.cmfd_accel()->accelerations(), 0);
}

TEST(CmfdAcceleration, FaultDegradeLandsOnPlainAnswerBitwise) {
  const SolveOptions opts = gate_options();

  Problem plain_p = gate_problem();
  CpuSolver plain(plain_p.stacks, plain_p.model.materials, 1);
  const SolveResult r0 = plain.solve(opts);

  fault::ScopedPlan fault_plan("cmfd.solve throw solver nth=1");
  Problem acc_p = gate_problem();
  CpuSolver acc(acc_p.stacks, acc_p.model.materials, 1);
  cmfd::CmfdOptions co;
  co.enable = true;
  acc.enable_cmfd(co);
  const SolveResult r1 = acc.solve(opts);

  EXPECT_TRUE(acc.cmfd_accel()->degraded());
  EXPECT_EQ(acc.cmfd_accel()->accelerations(), 0);
  EXPECT_EQ(r1.k_eff, r0.k_eff);
  EXPECT_EQ(r1.iterations, r0.iterations);
  EXPECT_EQ(r1.residual, r0.residual);
  expect_bitwise_flux(acc, plain);
}

// ------------------------------------------------------- perf model --------

TEST(CmfdPerfModel, OuterReductionModelIsSane) {
  // Closer-to-critical problems (dominance ratio -> 1) gain more.
  const double slow = perf::predict_cmfd_outer_reduction(0.99);
  const double fast = perf::predict_cmfd_outer_reduction(0.5);
  EXPECT_GT(slow, fast);
  EXPECT_GE(fast, 1.0);
  // Degenerate inputs never predict a slowdown.
  EXPECT_EQ(perf::predict_cmfd_outer_reduction(0.0), 1.0);
  EXPECT_EQ(perf::predict_cmfd_outer_reduction(1.0), 1.0);
  EXPECT_EQ(perf::predict_cmfd_outer_reduction(0.9, 1.5), 1.0);
}

}  // namespace
}  // namespace antmoc
