/// \file sweep_test.cpp
/// Correctness and reproducibility suite for the sweep hot path
/// (DESIGN.md §7): the fork-join host sweep, the privatized device
/// FSR tallies with their deterministic reduction, the decoded-track-info
/// cache, and the interleaved ExpTable layout.

#include <gtest/gtest.h>

#include <cmath>

#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/gpu_solver.h"
#include "solver/multi_gpu_solver.h"
#include "telemetry/telemetry.h"
#include "util/error.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem pin_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return Problem(models::build_core(opt), 4, 0.5, 2, 1.0);
}

SolveOptions fixed(int iterations) {
  SolveOptions opts;
  opts.fixed_iterations = iterations;
  return opts;
}

// ------------------------------------------------------- host fork-join ---

TEST(ParallelSweep, MatchesSerialWithinTolerance) {
  Problem p = pin_problem();
  CpuSolver serial(p.stacks, p.model.materials, 1);
  CpuSolver parallel(p.stacks, p.model.materials, 4);
  EXPECT_EQ(serial.sweep_workers(), 1u);
  EXPECT_EQ(parallel.sweep_workers(), 4u);

  const auto rs = serial.solve(fixed(6));
  const auto rp = parallel.solve(fixed(6));
  EXPECT_NEAR(rs.k_eff, rp.k_eff, 1e-10);
  EXPECT_EQ(serial.last_sweep_segments(), parallel.last_sweep_segments());

  const auto& fs = serial.fsr().scalar_flux();
  const auto& fp = parallel.fsr().scalar_flux();
  ASSERT_EQ(fs.size(), fp.size());
  for (std::size_t i = 0; i < fs.size(); ++i)
    EXPECT_NEAR(fs[i], fp[i], 1e-9 * (1.0 + std::abs(fs[i]))) << i;
}

TEST(ParallelSweep, BitReproducibleForFixedWorkerCount) {
  Problem p = pin_problem();
  SolveResult r[2];
  std::vector<double> flux[2];
  std::vector<float> psi[2];
  for (int run = 0; run < 2; ++run) {
    CpuSolver solver(p.stacks, p.model.materials, 3);
    r[run] = solver.solve(fixed(5));
    flux[run] = solver.fsr().scalar_flux();
    psi[run] = solver.psi_in();
  }
  // Bitwise: same worker count => same reduction tree, same flush order.
  EXPECT_EQ(r[0].k_eff, r[1].k_eff);
  EXPECT_EQ(r[0].residual, r[1].residual);
  ASSERT_EQ(flux[0].size(), flux[1].size());
  for (std::size_t i = 0; i < flux[0].size(); ++i)
    EXPECT_EQ(flux[0][i], flux[1][i]) << i;
  ASSERT_EQ(psi[0].size(), psi[1].size());
  for (std::size_t i = 0; i < psi[0].size(); ++i)
    EXPECT_EQ(psi[0][i], psi[1][i]) << i;
}

// -------------------------------------------- device privatized tallies ---

TEST(PrivatizedTallies, MatchesAtomicFallback) {
  Problem p = pin_problem();
  GpuSolverOptions opts;
  opts.resident_budget_bytes = std::size_t{1} << 20;

  gpusim::Device atomic_dev(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  opts.privatize = PrivatizeMode::kOff;
  GpuSolver atomic(p.stacks, p.model.materials, atomic_dev, opts);
  EXPECT_FALSE(atomic.privatized());
  const auto ra = atomic.solve(fixed(6));

  gpusim::Device priv_dev(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  opts.privatize = PrivatizeMode::kForce;
  GpuSolver priv(p.stacks, p.model.materials, priv_dev, opts);
  EXPECT_TRUE(priv.privatized());
  const auto rp = priv.solve(fixed(6));

  EXPECT_NEAR(ra.k_eff, rp.k_eff, 1e-9);
  const auto& fa = atomic.fsr().scalar_flux();
  const auto& fp = priv.fsr().scalar_flux();
  ASSERT_EQ(fa.size(), fp.size());
  for (std::size_t i = 0; i < fa.size(); ++i)
    EXPECT_NEAR(fa[i], fp[i], 1e-8 * (1.0 + std::abs(fa[i]))) << i;
}

TEST(PrivatizedTallies, ScratchChargedToArena) {
  Problem p = pin_problem();
  gpusim::Device device(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  GpuSolverOptions opts;
  opts.resident_budget_bytes = std::size_t{1} << 20;
  GpuSolver solver(p.stacks, p.model.materials, device, opts);
  ASSERT_TRUE(solver.privatized());  // 1 GiB affords the scratch
  EXPECT_TRUE(solver.info_cached());

  const auto breakdown = device.memory().breakdown();
  ASSERT_TRUE(breakdown.count("tally_scratch"));
  ASSERT_TRUE(breakdown.count("staged_fluxs"));
  ASSERT_TRUE(breakdown.count("track_info_cache"));
  EXPECT_EQ(breakdown.at("tally_scratch"),
            std::size_t{8} * p.model.geometry.num_fsrs() * 7 *
                sizeof(double));
  EXPECT_EQ(breakdown.at("staged_fluxs"),
            static_cast<std::size_t>(p.stacks.num_tracks()) * 2 * 7 *
                sizeof(double));
  EXPECT_EQ(breakdown.at("track_info_cache"),
            TrackInfoCache::bytes_for(p.stacks.num_tracks()));
}

TEST(PrivatizedTallies, AutoFallsBackWhenArenaCannotAfford) {
  Problem p = pin_problem();
  GpuSolverOptions opts;
  opts.resident_budget_bytes = std::size_t{1} << 20;

  // Measure the mandatory footprint, then size an arena that fits it but
  // not the optional hot-path buffers.
  std::size_t base = 0;
  {
    gpusim::Device probe(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    opts.privatize = PrivatizeMode::kOff;
    GpuSolver solver(p.stacks, p.model.materials, probe, opts);
    base = probe.memory().used();
  }
  const auto tight = gpusim::DeviceSpec::scaled(base + 1024, 8);

  gpusim::Device auto_dev(tight);
  opts.privatize = PrivatizeMode::kAuto;
  GpuSolver auto_solver(p.stacks, p.model.materials, auto_dev, opts);
  EXPECT_FALSE(auto_solver.privatized());
  // The probe footprint includes the info cache (kOff only skips the
  // tally scratch), so the tight arena still affords it.
  EXPECT_TRUE(auto_solver.info_cached());
  EXPECT_FALSE(auto_dev.memory().breakdown().count("tally_scratch"));
  const auto r = auto_solver.solve(fixed(4));  // fallback still solves
  EXPECT_GT(r.k_eff, 0.0);

  gpusim::Device force_dev(tight);
  opts.privatize = PrivatizeMode::kForce;
  EXPECT_THROW(
      GpuSolver(p.stacks, p.model.materials, force_dev, opts),
      DeviceOutOfMemory);
}

TEST(PrivatizedTallies, GpuSolveBitReproducible) {
  Problem p = pin_problem();
  SolveResult r[2];
  std::vector<double> flux[2];
  for (int run = 0; run < 2; ++run) {
    gpusim::Device device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    GpuSolverOptions opts;
    opts.resident_budget_bytes = std::size_t{1} << 20;
    opts.privatize = PrivatizeMode::kForce;
    GpuSolver solver(p.stacks, p.model.materials, device, opts);
    r[run] = solver.solve(fixed(5));
    flux[run] = solver.fsr().scalar_flux();
  }
  EXPECT_EQ(r[0].k_eff, r[1].k_eff);
  ASSERT_EQ(flux[0].size(), flux[1].size());
  for (std::size_t i = 0; i < flux[0].size(); ++i)
    EXPECT_EQ(flux[0][i], flux[1][i]) << i;
}

TEST(PrivatizedTallies, MultiGpuBitReproducibleAndMatchesAtomic) {
  Problem p = pin_problem();
  MultiGpuOptions opts;
  opts.num_devices = 2;
  opts.device_spec = gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 4);
  opts.resident_budget_bytes = std::size_t{1} << 20;

  opts.privatize = PrivatizeMode::kOff;
  MultiGpuSolver atomic(p.stacks, p.model.materials, opts);
  EXPECT_FALSE(atomic.privatized());
  const auto ra = atomic.solve(fixed(5));

  SolveResult r[2];
  std::vector<double> flux[2];
  std::uint64_t dma[2];
  for (int run = 0; run < 2; ++run) {
    opts.privatize = PrivatizeMode::kForce;
    MultiGpuSolver solver(p.stacks, p.model.materials, opts);
    EXPECT_TRUE(solver.privatized());
    r[run] = solver.solve(fixed(5));
    flux[run] = solver.fsr().scalar_flux();
    dma[run] = solver.last_sweep_dma_bytes();
  }
  EXPECT_EQ(r[0].k_eff, r[1].k_eff);
  for (std::size_t i = 0; i < flux[0].size(); ++i)
    EXPECT_EQ(flux[0][i], flux[1][i]) << i;
  // DMA accounting moves to the serial flush but counts the same bytes.
  EXPECT_EQ(dma[0], dma[1]);
  EXPECT_EQ(dma[0], atomic.last_sweep_dma_bytes());
  EXPECT_NEAR(ra.k_eff, r[0].k_eff, 1e-9);
}

// ------------------------------------------------------- info cache -------

TEST(TrackInfoCache, MatchesPerItemDecode) {
  Problem p = pin_problem();
  const TrackInfoCache cache(p.stacks);
  ASSERT_EQ(cache.size(), p.stacks.num_tracks());
  for (long id = 0; id < p.stacks.num_tracks(); ++id) {
    const Track3DInfo ref = p.stacks.info(id);
    const Track3DInfo& got = cache[id];
    EXPECT_EQ(got.track2d, ref.track2d) << id;
    EXPECT_EQ(got.polar, ref.polar) << id;
    EXPECT_EQ(got.up, ref.up) << id;
    EXPECT_EQ(got.zindex, ref.zindex) << id;
    EXPECT_DOUBLE_EQ(got.s_entry, ref.s_entry) << id;
    EXPECT_DOUBLE_EQ(got.s_exit, ref.s_exit) << id;
    EXPECT_DOUBLE_EQ(
        cache.weight(id),
        p.stacks.direction_weight(id) * p.stacks.track_area(id))
        << id;
  }
  EXPECT_EQ(cache.bytes(), TrackInfoCache::bytes_for(cache.size()));
}

// ------------------------------------------------- ExpTable layout ---------

TEST(ExpTableLayout, InterleavedPairsAreValueAndForwardDifference) {
  const ExpTable table(40.0, 1e-6);
  const double dx = table.table_spacing();
  ASSERT_GE(table.size(), 3u);
  for (std::size_t i = 0; i + 1 < table.size(); ++i) {
    EXPECT_DOUBLE_EQ(table.knot_value(i), exp_f1(i * dx)) << i;
    EXPECT_DOUBLE_EQ(table.knot_slope(i),
                     table.knot_value(i + 1) - table.knot_value(i))
        << i;
  }
  EXPECT_DOUBLE_EQ(table.knot_slope(table.size() - 1), 0.0);
}

TEST(ExpTableLayout, FmaFormMatchesClassicInterpolant) {
  const ExpTable table(40.0, 1e-6);
  const double dx = table.table_spacing();
  for (double tau = 1e-4; tau < 39.0; tau *= 1.7) {
    const std::size_t i = static_cast<std::size_t>(tau / dx);
    const double f = tau / dx - static_cast<double>(i);
    const double classic = table.knot_value(i) * (1.0 - f) +
                           table.knot_value(i + 1) * f;
    EXPECT_NEAR(table(tau), classic, 1e-15) << tau;
    EXPECT_NEAR(table(tau), exp_f1(tau), 1e-6) << tau;
  }
}

// ------------------------------------------------- sweep telemetry --------

TEST(SweepTelemetry, SegmentCounterAndThroughputGauge) {
  telemetry::Config cfg;
  cfg.enabled = true;
  telemetry::Telemetry::instance().set_config(cfg);
  telemetry::Telemetry::instance().reset();
  if (!telemetry::on())
    GTEST_SKIP() << "telemetry compiled out";

  Problem p = pin_problem();
  CpuSolver solver(p.stacks, p.model.materials, 2);
  solver.solve(fixed(3));

  auto& m = telemetry::metrics();
  EXPECT_EQ(m.counter("solver.sweep_segments").value(),
            3u * static_cast<std::uint64_t>(solver.last_sweep_segments()));
  EXPECT_GT(m.gauge("solver.segments_per_second").value(), 0.0);

  telemetry::Telemetry::instance().reset();
  telemetry::Telemetry::instance().set_enabled(false);
}

}  // namespace
}  // namespace antmoc
