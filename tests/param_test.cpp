#include <gtest/gtest.h>

#include <cmath>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/domain_solver.h"
#include "solver/gpu_solver.h"
#include "track/generator2d.h"
#include "track/quadrature.h"
#include "track/track3d.h"

namespace antmoc {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ===================================================== quadrature sweep ====

struct QuadCase {
  int num_azim;
  double spacing;
  double wx, wy;
  int num_polar;
};

class QuadratureSweep : public ::testing::TestWithParam<QuadCase> {};

TEST_P(QuadratureSweep, InvariantsHold) {
  const auto c = GetParam();
  const Quadrature q(c.num_azim, c.spacing, c.wx, c.wy, c.num_polar);

  double azim_sum = 0.0, polar_sum = 0.0, omega = 0.0;
  for (int a = 0; a < q.num_azim_2(); ++a) {
    azim_sum += q.azim_frac(a);
    // Angles ordered and inside (0, pi).
    EXPECT_GT(q.phi(a), 0.0);
    EXPECT_LT(q.phi(a), kPi);
    if (a > 0) {
      EXPECT_GT(q.phi(a), q.phi(a - 1));
    }
    // Corrected spacing never exceeds the request.
    EXPECT_LE(q.spacing_eff(a), c.spacing + 1e-12);
    // Complementary symmetry (reflective-linking precondition).
    EXPECT_NEAR(q.phi(a) + q.phi(q.complement(a)), kPi, 1e-12);
    for (int p = 0; p < q.num_polar(); ++p)
      omega += 4.0 * q.direction_weight(a, p);
  }
  for (int p = 0; p < q.num_polar(); ++p) polar_sum += q.polar_frac(p);
  EXPECT_NEAR(azim_sum, 1.0, 1e-12);
  EXPECT_NEAR(polar_sum, 1.0, 1e-6);
  EXPECT_NEAR(omega, 4.0 * kPi, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuadratureSweep,
    ::testing::Values(QuadCase{4, 0.5, 1.26, 1.26, 1},
                      QuadCase{8, 0.3, 2.0, 3.0, 2},
                      QuadCase{16, 0.1, 5.0, 2.5, 3},
                      QuadCase{32, 0.05, 10.0, 10.0, 4},
                      QuadCase{64, 0.02, 21.42, 21.42, 2},
                      QuadCase{8, 1.5, 1.0, 7.0, 6}));

// ======================================================== laydown sweep ====

struct LaydownCase {
  int num_azim;
  double spacing;
  LinkKind kind;
};

class LaydownSweep : public ::testing::TestWithParam<LaydownCase> {};

TEST_P(LaydownSweep, LinksResolveAndInvolute) {
  const auto c = GetParam();
  const double wx = 2.52, wy = 1.26;
  const Quadrature q(c.num_azim, c.spacing, wx, wy, 1);
  Bounds box;
  box.x_max = wx;
  box.y_max = wy;
  const TrackGenerator2D gen(
      q, box, {c.kind, c.kind, c.kind, c.kind});

  for (int uid = 0; uid < gen.num_tracks(); ++uid) {
    const auto& t = gen.track(uid);
    for (const TrackLink* link : {&t.fwd_link, &t.bwd_link}) {
      if (c.kind == LinkKind::kVacuum) {
        EXPECT_EQ(link->kind, LinkKind::kVacuum);
        continue;
      }
      ASSERT_GE(link->track, 0);
      ASSERT_LT(link->track, gen.num_tracks());
      // Flux continuity: entering through that end must come back to us.
      const auto& t2 = gen.track(link->track);
      const TrackLink& back = link->forward ? t2.bwd_link : t2.fwd_link;
      EXPECT_EQ(back.track, uid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LaydownSweep,
    ::testing::Values(LaydownCase{4, 0.4, LinkKind::kReflective},
                      LaydownCase{8, 0.4, LinkKind::kReflective},
                      LaydownCase{16, 0.2, LinkKind::kReflective},
                      LaydownCase{32, 0.15, LinkKind::kReflective},
                      LaydownCase{8, 0.4, LinkKind::kPeriodic},
                      LaydownCase{16, 0.2, LinkKind::kPeriodic},
                      LaydownCase{8, 0.4, LinkKind::kVacuum},
                      LaydownCase{8, 0.05, LinkKind::kReflective}));

// ========================================================= stacks sweep ====

struct StackCase {
  int num_polar;
  double dz;
  double height;
  int layers;
};

class StacksSweep : public ::testing::TestWithParam<StackCase> {};

TEST_P(StacksSweep, TilingAndRoundTrip) {
  const auto c = GetParam();
  const auto model = models::build_pin_cell(c.layers, c.height);
  const Geometry& g = model.geometry;
  const Quadrature q(8, 0.15, 1.26, 1.26, c.num_polar);
  TrackGenerator2D gen(q, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  const TrackStacks stacks(gen, g, 0.0, c.height, c.dz);

  // dz correction divides the height.
  const double ratio = c.height / stacks.dz();
  EXPECT_NEAR(ratio, std::round(ratio), 1e-9);

  double volume = 0.0;
  for (long id = 0; id < stacks.num_tracks(); id += 1) {
    const auto t = stacks.info(id);
    EXPECT_EQ(t.id, id);
    EXPECT_EQ(stacks.id(t.track2d, t.polar, t.up, t.zindex), id);
    volume += 2.0 * stacks.direction_weight(id) / (4.0 * kPi) *
              stacks.track_area(id) * t.length3d();
  }
  const double exact = 1.26 * 1.26 * c.height;
  EXPECT_NEAR(volume, exact, 0.05 * exact);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StacksSweep,
    ::testing::Values(StackCase{1, 0.5, 2.0, 1}, StackCase{2, 0.5, 2.0, 2},
                      StackCase{3, 0.25, 1.0, 1},
                      StackCase{2, 1.0, 6.0, 3},
                      StackCase{1, 0.1, 0.5, 1},
                      StackCase{4, 0.5, 3.0, 2}));

// ===================================================== solver-path sweep ====

struct SolverCase {
  TrackPolicy policy;
  bool l3;
  int num_polar;
};

class SolverSweep : public ::testing::TestWithParam<SolverCase> {
 protected:
  static double reference_k(int num_polar) {
    static std::map<int, double> cache;
    if (cache.count(num_polar)) return cache[num_polar];
    auto [k, _] = run(num_polar, [](const TrackStacks& s,
                                    const std::vector<Material>& m) {
      return std::make_unique<CpuSolver>(s, m);
    });
    return cache[num_polar] = k;
  }

  template <class MakeSolver>
  static std::pair<double, bool> run(int num_polar, MakeSolver&& make) {
    const auto model = models::build_pin_cell(2, 2.0);
    const Geometry& g = model.geometry;
    const Quadrature quad(4, 0.25, 1.26, 1.26, num_polar);
    TrackGenerator2D gen(quad, g.bounds(),
                         {LinkKind::kReflective, LinkKind::kReflective,
                          LinkKind::kReflective, LinkKind::kReflective});
    gen.trace(g);
    const TrackStacks stacks(gen, g, 0.0, 2.0, 0.5);
    auto solver = make(stacks, model.materials);
    SolveOptions opts;
    opts.tolerance = 1e-6;
    opts.max_iterations = 20000;
    const auto result = solver->solve(opts);
    return {result.k_eff, result.converged};
  }
};

TEST_P(SolverSweep, DevicePathMatchesReference) {
  const auto c = GetParam();
  gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 28, 8));
  auto [k, converged] =
      run(c.num_polar, [&](const TrackStacks& s,
                           const std::vector<Material>& m) {
        GpuSolverOptions opts;
        opts.policy = c.policy;
        opts.l3_sort = c.l3;
        opts.resident_budget_bytes = 1 << 15;
        return std::make_unique<GpuSolver>(s, m, device, opts);
      });
  ASSERT_TRUE(converged);
  const double k_ref = reference_k(c.num_polar);
  EXPECT_NEAR(k, k_ref, 2e-5 * k_ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverSweep,
    ::testing::Values(
        SolverCase{TrackPolicy::kExplicit, true, 1},
        SolverCase{TrackPolicy::kExplicit, false, 2},
        SolverCase{TrackPolicy::kOnTheFly, true, 1},
        SolverCase{TrackPolicy::kOnTheFly, false, 1},
        SolverCase{TrackPolicy::kManaged, true, 2},
        SolverCase{TrackPolicy::kManaged, false, 1}));

// ================================================== decomposition sweep ====

class DecompSweep
    : public ::testing::TestWithParam<std::array<int, 3>> {};

TEST_P(DecompSweep, KConsistentWithSingleDomain) {
  const auto [nx, ny, nz] = GetParam();
  const auto model = models::build_pin_cell(2, 2.0);
  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.1;
  params.num_polar = 1;
  params.z_spacing = 0.5;
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  static double k_single = 0.0;
  if (k_single == 0.0)
    k_single = solve_decomposed(model.geometry, model.materials, {1, 1, 1},
                                params, opts)
                   .result.k_eff;
  const auto split = solve_decomposed(model.geometry, model.materials,
                                      {nx, ny, nz}, params, opts);
  ASSERT_TRUE(split.result.converged);
  EXPECT_NEAR(split.result.k_eff, k_single, 0.015 * k_single)
      << nx << "x" << ny << "x" << nz;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecompSweep,
                         ::testing::Values(std::array<int, 3>{2, 1, 1},
                                           std::array<int, 3>{1, 2, 1},
                                           std::array<int, 3>{1, 1, 2},
                                           std::array<int, 3>{2, 2, 1},
                                           std::array<int, 3>{1, 2, 2},
                                           std::array<int, 3>{2, 2, 2},
                                           std::array<int, 3>{3, 1, 1},
                                           std::array<int, 3>{1, 1, 4}));

// =================================================== knob negative paths ====

/// Runs `fn`, expecting it to throw an Error whose message contains every
/// fragment — a malformed knob must name the key and the offending value,
/// or the user gets a stack trace instead of a fix.
template <class Fn>
void expect_diagnostic(Fn&& fn, std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected a diagnostic";
  } catch (const Error& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments)
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "diagnostic missing '" << fragment << "': " << what;
  }
}

TEST(CmfdMeshKnob, MalformedSpecsNameTheKeyAndValue) {
  const auto parse = [](const char* text) {
    return [text] { cmfd::parse_mesh_spec(text); };
  };
  // Zero and negative dims.
  expect_diagnostic(parse("0x4x4"), {"cmfd.mesh", "0x4x4", "positive"});
  expect_diagnostic(parse("4x-2x4"), {"cmfd.mesh", "4x-2x4", "-2"});
  // Overflow: a dimension beyond int, and a product beyond the cell cap.
  expect_diagnostic(parse("99999999999999999999x2x2"),
                    {"cmfd.mesh", "overflows"});
  expect_diagnostic(parse("4096x4096x4096"), {"cmfd.mesh", "exceeds"});
  // Shape and token junk.
  expect_diagnostic(parse("4x4"), {"cmfd.mesh", "4x4", "three"});
  expect_diagnostic(parse("pinn"), {"cmfd.mesh", "pinn"});
  expect_diagnostic(parse("4xax4"), {"cmfd.mesh", "not an integer"});
  expect_diagnostic(parse(""), {"cmfd.mesh"});
}

TEST(CmfdMeshKnob, WellFormedSpecsRoundTrip) {
  EXPECT_EQ(cmfd::mesh_spec_name(cmfd::parse_mesh_spec("pin")), "pin");
  EXPECT_EQ(cmfd::mesh_spec_name(cmfd::parse_mesh_spec("assembly")),
            "assembly");
  const cmfd::MeshSpec spec = cmfd::parse_mesh_spec("8X4x3");
  EXPECT_EQ(spec.nx, 8);
  EXPECT_EQ(spec.ny, 4);
  EXPECT_EQ(spec.nz, 3);
  EXPECT_EQ(cmfd::mesh_spec_name(spec), "8x4x3");
}

TEST(SweepBackendKnob, TyposNameTheKeyAndValue) {
  expect_diagnostic([] { parse_sweep_backend("histroy"); },
                    {"sweep.backend", "histroy"});
  expect_diagnostic([] { parse_sweep_backend("evnet"); },
                    {"sweep.backend", "evnet"});
  expect_diagnostic([] { parse_sweep_backend(""); }, {"sweep.backend"});
}

TEST(TrackStorageKnob, TyposNameTheKeyAndValue) {
  expect_diagnostic([] { parse_track_storage("compcat"); },
                    {"track.storage", "compcat"});
  expect_diagnostic([] { parse_track_storage("exat"); },
                    {"track.storage", "exat"});
  expect_diagnostic([] { parse_track_storage(""); }, {"track.storage"});
}

TEST(TrackStorageKnob, WellFormedValuesRoundTrip) {
  EXPECT_EQ(track_storage_name(parse_track_storage("exact")),
            std::string("exact"));
  EXPECT_EQ(track_storage_name(parse_track_storage("compact")),
            std::string("compact"));
}

TEST(TrackStorageKnob, CompactPlusForcedTemplatesNamesBothKeys) {
  // The conflict diagnostic must name both offending knobs so the user
  // knows which one to flip.
  expect_diagnostic(
      [] {
        require_compact_storage_compatible(TrackStorage::kCompact,
                                           TemplateMode::kForce);
      },
      {"track.storage", "compact", "track.templates", "force"});
  // Every other combination is fine.
  require_compact_storage_compatible(TrackStorage::kCompact,
                                     TemplateMode::kAuto);
  require_compact_storage_compatible(TrackStorage::kCompact,
                                     TemplateMode::kOff);
  require_compact_storage_compatible(TrackStorage::kExact,
                                     TemplateMode::kForce);
}

}  // namespace
}  // namespace antmoc
