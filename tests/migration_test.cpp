#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/migration.h"
#include "fault/fault.h"
#include "io/writers.h"
#include "models/c5g7_model.h"
#include "partition/load_mapper.h"
#include "solver/cpu_solver.h"
#include "solver/domain_solver.h"
#include "solver/resilient_solver.h"
#include "util/error.h"

namespace antmoc {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the gtest temp root, removed on
/// destruction so shard files never leak between tests.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(::testing::TempDir() + "antmoc_migr_" + tag) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  const std::string path;
};

// ----------------------------------------------------- adopter election ---

TEST(ElectAdopters, OrphanGoesToTheLeastLoadedSurvivor) {
  const std::vector<double> load{10.0, 1.0, 2.0, 3.0};
  const std::vector<int> host{0, 1, 2, 3};
  const std::vector<char> alive{0, 1, 1, 1};
  const std::vector<double> cap(4, 1.0);
  const auto a = partition::elect_adopters(load, host, alive, cap);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].first, 0);   // the dead rank's domain
  EXPECT_EQ(a[0].second, 1);  // lightest survivor adopts it
}

TEST(ElectAdopters, HeaviestOrphanIsPlacedFirst) {
  // Ranks 0 and 1 are dead; their domains spread over the survivors with
  // the heavy one assigned first, so no survivor gets both.
  const std::vector<double> load{5.0, 4.0, 1.0, 1.0};
  const std::vector<int> host{0, 1, 2, 3};
  const std::vector<char> alive{0, 0, 1, 1};
  const std::vector<double> cap(4, 1.0);
  const auto a = partition::elect_adopters(load, host, alive, cap);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], (std::pair<int, int>{0, 2}));
  EXPECT_EQ(a[1], (std::pair<int, int>{1, 3}));
}

TEST(ElectAdopters, CapacityBiasesTheElection) {
  // Equal loads, but rank 2 is twice as fast: its effective load is
  // halved, so it wins the orphan over the tie-break-lower rank 1.
  const std::vector<double> load{6.0, 3.0, 3.0, 3.0};
  const std::vector<int> host{0, 1, 2, 3};
  const std::vector<char> alive{0, 1, 1, 1};
  const std::vector<double> cap{1.0, 1.0, 2.0, 1.0};
  const auto a = partition::elect_adopters(load, host, alive, cap);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].second, 2);
}

TEST(ElectAdopters, PureFunctionOfItsInputs) {
  const std::vector<double> load{7.0, 2.0, 5.0, 3.0};
  const std::vector<int> host{0, 1, 2, 3};
  const std::vector<char> alive{1, 0, 1, 0};
  const std::vector<double> cap(4, 1.0);
  const auto a = partition::elect_adopters(load, host, alive, cap);
  const auto b = partition::elect_adopters(load, host, alive, cap);
  EXPECT_EQ(a, b);  // every survivor derives the identical table
}

// -------------------------------------------------- shard recovery line ---

/// Writes a minimal valid shard: the CRC-framed payload whose first eight
/// bytes are the iteration, which is all scan_recovery_line() reads.
void make_shard(const std::string& path, std::int64_t iter) {
  std::vector<std::byte> payload(sizeof iter + 8);
  std::memcpy(payload.data(), &iter, sizeof iter);
  io::write_checked_blob(path, payload);
}

TEST(ShardLine, ScanPicksTheNewestLineCompleteForEveryDomain) {
  TempDir dir("scanline");
  for (int d = 0; d < 2; ++d) {
    make_shard(cluster::shard_path(dir.path, d, 1), 2);
    make_shard(cluster::shard_path(dir.path, d, 0), 4);
  }
  auto line = cluster::scan_recovery_line(dir.path, 2);
  EXPECT_EQ(line.iteration, 4);
  EXPECT_EQ(line.path[1], cluster::shard_path(dir.path, 1, 0));

  // Corrupt domain 1's newest generation: the scan must fall back to the
  // older line that is still intact everywhere, not fail outright.
  {
    std::fstream f(cluster::shard_path(dir.path, 1, 0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    f.put('\xff');
  }
  line = cluster::scan_recovery_line(dir.path, 2);
  EXPECT_EQ(line.iteration, 2);

  // No generation at all for a domain: no recovery line exists.
  fs::remove(cluster::shard_path(dir.path, 1, 0));
  fs::remove(cluster::shard_path(dir.path, 1, 1));
  line = cluster::scan_recovery_line(dir.path, 2);
  EXPECT_EQ(line.iteration, -1);
}

TEST(ShardLine, PathsKeepGenerationsAndMigrationTrafficDistinct) {
  EXPECT_NE(cluster::shard_path("c", 3, 0), cluster::shard_path("c", 3, 1));
  EXPECT_EQ(cluster::shard_path("c", 3, 0), cluster::shard_path("c", 3, 2));
  EXPECT_NE(cluster::migrate_shard_path("c", 3),
            cluster::shard_path("c", 3, 0));
  EXPECT_NE(cluster::shard_path("c", 3, 0), cluster::shard_path("c", 4, 0));
}

TEST(RebalanceMode, ParsesTheConfigSpellings) {
  EXPECT_EQ(cluster::parse_rebalance("off"), cluster::RebalanceMode::kOff);
  EXPECT_EQ(cluster::parse_rebalance("on_failure"),
            cluster::RebalanceMode::kOnFailure);
  EXPECT_EQ(cluster::parse_rebalance("on_drift"),
            cluster::RebalanceMode::kOnDrift);
  EXPECT_THROW(cluster::parse_rebalance("sometimes"), ConfigError);
}

// ---------------------------------------------- checkpoint integrity -----

/// A real checkpoint written by the solver, for corruption tests.
struct CheckpointFixture {
  CheckpointFixture() : model(models::build_pin_cell(2, 2.0)) {
    const Geometry& g = model.geometry;
    quad = std::make_unique<Quadrature>(4, 0.2, g.bounds().width_x(),
                                        g.bounds().width_y(), 1);
    gen = std::make_unique<TrackGenerator2D>(
        *quad, g.bounds(),
        std::array<LinkKind, 4>{LinkKind::kReflective, LinkKind::kReflective,
                                LinkKind::kReflective,
                                LinkKind::kReflective});
    gen->trace(g);
    stacks = std::make_unique<TrackStacks>(*gen, g, 0.0, 2.0, 0.5);
    solver = std::make_unique<CpuSolver>(*stacks, model.materials, 1u);
    SolveOptions opts;
    opts.fixed_iterations = 3;
    solver->solve(opts);
  }
  models::C5G7Model model;
  std::unique_ptr<Quadrature> quad;
  std::unique_ptr<TrackGenerator2D> gen;
  std::unique_ptr<TrackStacks> stacks;
  std::unique_ptr<CpuSolver> solver;
};

void expect_load_fails_with(TransportSolver& solver, const std::string& path,
                            const std::string& needle) {
  try {
    solver.load_state(path);
    FAIL() << "load_state accepted a damaged checkpoint: " << path;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(CheckpointIntegrity, BitFlipTruncationAndV1AreRejectedDistinctly) {
  CheckpointFixture fx;
  TempDir dir("integrity");
  const std::string path = dir.path + "/state.ckpt";
  fx.solver->save_state(path, 3);
  EXPECT_EQ(fx.solver->load_state(path), 3);  // intact round trip

  // Flip one payload bit: the CRC must catch it and say so.
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size / 2));
    const int c = f.peek();
    f.put(static_cast<char>(c ^ 0x40));
  }
  expect_load_fails_with(*fx.solver, path, "CRC mismatch");

  // Truncate mid-payload: the header's promised size no longer matches.
  fx.solver->save_state(path, 3);
  fs::resize_file(path, size / 2);
  expect_load_fails_with(*fx.solver, path, "truncated");

  // A version-1 (pre-CRC) file is refused with a re-create hint rather
  // than being misparsed.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write("ANTMOC01", 8);
    const std::uint64_t junk = 0;
    f.write(reinterpret_cast<const char*>(&junk), sizeof junk);
  }
  expect_load_fails_with(*fx.solver, path, "version-1");
}

// ------------------------------------------------------ takeover solve ---

DomainRunParams migr_params() {
  DomainRunParams p;
  p.num_azim = 4;
  p.azim_spacing = 0.2;
  p.num_polar = 1;
  p.z_spacing = 0.5;
  // Bitwise comparisons require a fixed fork-join width; the deadline
  // turns any protocol hang into CommTimeout instead of a wedged test.
  p.sweep_workers = 1;
  p.comm_deadline = std::chrono::seconds(60);
  return p;
}

SolveOptions fixed_opts(int iterations) {
  SolveOptions o;
  o.fixed_iterations = iterations;
  return o;
}

DomainRunSummary run_pin(const DomainRunParams& params, int iterations) {
  const auto model = models::build_pin_cell(2, 2.0);
  return solve_decomposed(model.geometry, model.materials, {2, 2, 1}, params,
                          fixed_opts(iterations));
}

TEST(Takeover, RankDeathMidSolveIsAbsorbedWithBitwiseIdenticalK) {
  const auto baseline = run_pin(migr_params(), 12);

  TempDir dir("takeover");
  DomainRunParams params = migr_params();
  params.checkpoint_every = 2;
  params.checkpoint_dir = dir.path;

  // Rank 1 dies at the top of its 6th iteration; the survivors must agree
  // the death, adopt domain 1, rewind to the iteration-4 shard line, and
  // land on the failure-free eigenvalue bit for bit.
  fault::ScopedPlan plan("solver.iteration throw solver nth=6 rank=1");
  const auto summary = run_pin(params, 12);

  EXPECT_GE(summary.takeovers, 1);
  EXPECT_EQ(summary.result.iterations, 12);
  EXPECT_EQ(summary.resumed_from_iteration, 4);
  ASSERT_EQ(summary.final_host.size(), 4u);
  EXPECT_NE(summary.final_host[1], 1);  // the orphan lives elsewhere now
  EXPECT_EQ(summary.final_host[0], 0);
  EXPECT_EQ(summary.result.k_eff, baseline.result.k_eff);
  EXPECT_EQ(summary.fission_rate, baseline.fission_rate);
  EXPECT_EQ(summary.scalar_flux, baseline.scalar_flux);
}

TEST(Takeover, SecondDeathDuringAnyProtocolPhaseNeverHangs) {
  const auto baseline = run_pin(migr_params(), 12);
  const auto model = models::build_pin_cell(2, 2.0);

  for (const char* phase :
       {"migrate.agree", "migrate.elect", "migrate.rehydrate",
        "migrate.rewire"}) {
    SCOPED_TRACE(phase);
    TempDir dir(std::string("phase_") + (std::strrchr(phase, '.') + 1));

    DecomposedResilientOptions opts;
    opts.params = migr_params();
    opts.params.checkpoint_every = 2;
    opts.params.checkpoint_dir = dir.path;
    opts.solve = fixed_opts(12);
    opts.max_restarts = 1;

    // Rank 1 dies mid-solve; rank 2 then dies *inside* the takeover at
    // this phase. The run must either complete in-world (a retried
    // takeover among the remaining survivors) or fall back cleanly to
    // the restart rung — and in both cases reach the bitwise baseline.
    fault::ScopedPlan killer("solver.iteration throw solver nth=6 rank=1");
    fault::Injector::instance().arm(
        fault::parse_plan(std::string(phase) + " throw solver nth=1 rank=2"));

    const auto report = solve_decomposed_resilient(
        model.geometry, model.materials, {2, 2, 1}, opts);
    EXPECT_NE(report.rung, RecoveryRung::kNone);
    EXPECT_EQ(report.summary.result.iterations, 12);
    EXPECT_EQ(report.summary.result.k_eff, baseline.result.k_eff);
  }
}

TEST(Takeover, RebalanceOffPropagatesTheFailure) {
  TempDir dir("rebaloff");
  DomainRunParams params = migr_params();
  params.checkpoint_every = 2;
  params.checkpoint_dir = dir.path;
  params.rebalance = cluster::RebalanceMode::kOff;

  fault::ScopedPlan plan("solver.iteration throw solver nth=6 rank=1");
  EXPECT_THROW(run_pin(params, 12), Error);
}

TEST(Takeover, NoShardsFallsBackToTheRestartRung) {
  const auto baseline = run_pin(migr_params(), 12);
  const auto model = models::build_pin_cell(2, 2.0);

  DecomposedResilientOptions opts;
  opts.params = migr_params();  // checkpointing disabled: nothing to rehydrate
  opts.solve = fixed_opts(12);
  opts.max_restarts = 1;

  fault::ScopedPlan plan("solver.iteration throw solver nth=6 rank=1");
  const auto report = solve_decomposed_resilient(
      model.geometry, model.materials, {2, 2, 1}, opts);
  EXPECT_EQ(report.rung, RecoveryRung::kRestart);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_NE(report.diagnostic.find("cannot rehydrate"), std::string::npos);
  EXPECT_EQ(report.summary.result.iterations, 12);
  EXPECT_EQ(report.summary.result.k_eff, baseline.result.k_eff);
}

// ---------------------------------------------------- voluntary drift ----

TEST(Voluntary, DriftMigratesTheStragglersDomainBitwise) {
  const auto baseline = run_pin(migr_params(), 8);

  TempDir dir("drift");
  DomainRunParams params = migr_params();
  params.rebalance = cluster::RebalanceMode::kOnDrift;
  params.checkpoint_dir = dir.path;  // carries the migration shard
  params.drift_check_every = 2;
  // After the migration the donor hosts nothing and the recipient hosts
  // two domains, so the hosting ranks' times sit at {t, 2t, t} and the
  // gauge equilibrates at MAX/AVG = 1.5 exactly — a threshold of 1.5
  // re-trips on timing noise and bounces the domain straight back to the
  // still-delayed rank. 2.5 sits between that equilibrium and the ~4.0
  // the injected straggler measures, so exactly one migration fires.
  params.drift_threshold = 2.5;

  // A repeating injected delay fakes a straggler: rank 1's sweeps take
  // ~25 ms longer than everyone else's, so the MAX/AVG gauge trips and
  // its domain is handed to the fastest rank. No failure, no rewind —
  // and the eigenvalue must not move by a single bit.
  fault::ScopedPlan plan("domain.sweep delay ms=25 rank=1 repeat");
  const auto summary = run_pin(params, 8);

  EXPECT_GE(summary.voluntary_migrations, 1);
  ASSERT_EQ(summary.final_host.size(), 4u);
  EXPECT_NE(summary.final_host[1], 1);
  EXPECT_EQ(summary.resumed_from_iteration, -1);  // exact handoff, no rewind
  EXPECT_EQ(summary.result.iterations, 8);
  EXPECT_EQ(summary.result.k_eff, baseline.result.k_eff);
  EXPECT_EQ(summary.fission_rate, baseline.fission_rate);
}

// ------------------------------------------------- fault-point registry ---

TEST(FaultRegistry, KnownPointsAreSortedAndCoverTheProtocol) {
  const auto& points = fault::known_points();
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LT(std::string(points[i - 1].name), std::string(points[i].name));
  for (const char* name :
       {"migrate.agree", "migrate.elect", "migrate.rehydrate",
        "migrate.rewire", "migrate.voluntary", "checkpoint.write",
        "domain.sweep", "solver.iteration"}) {
    const bool found =
        std::any_of(points.begin(), points.end(), [&](const auto& p) {
          return std::string(p.name) == name;
        });
    EXPECT_TRUE(found) << name << " missing from known_points()";
  }
}

}  // namespace
}  // namespace antmoc
