#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/writers.h"
#include "models/c5g7_model.h"
#include "util/error.h"

namespace antmoc::io {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Writers, FissionRateCsvRoundTrip) {
  const auto model = models::build_pin_cell(2, 2.0);
  const long n = model.geometry.num_fsrs();
  std::vector<double> rate(n), vol(n, 1.0);
  for (long i = 0; i < n; ++i) rate[i] = 0.5 * i;
  const std::string path = ::testing::TempDir() + "/fission.csv";
  write_fission_rate_csv(path, model.geometry, rate, vol);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("fsr,radial_region,layer,material"),
            std::string::npos);
  // Header plus one line per FSR.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(n + 1));
}

TEST(Writers, FissionRateCsvValidatesSizes) {
  const auto model = models::build_pin_cell(1, 1.0);
  std::vector<double> wrong(3, 0.0);
  std::vector<double> vol(model.geometry.num_fsrs(), 1.0);
  EXPECT_THROW(write_fission_rate_csv("/tmp/x.csv", model.geometry, wrong,
                                      vol),
               Error);
}

TEST(Writers, PinPowerCsvIsMapOriented) {
  // 2x2 grid: value at (i=0, j=1) must appear on the FIRST line (top row).
  const std::vector<double> power{1.0, 2.0, 3.0, 4.0};  // row-major, j up
  const std::string path = ::testing::TempDir() + "/pins.csv";
  write_pin_power_csv(path, power, 2, 2);
  const std::string text = slurp(path);
  std::istringstream lines(text);
  std::string first, second;
  std::getline(lines, first);
  std::getline(lines, second);
  EXPECT_EQ(first, "3,4");
  EXPECT_EQ(second, "1,2");
}

TEST(Writers, VtkVolumeHasLegacyHeader) {
  const std::string path = ::testing::TempDir() + "/vol.vtk";
  write_vtk_volume(path, "fission_rate", 2, 2, 2, 1.0, 1.0, 1.0,
                   std::vector<double>(8, 1.5));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(text.find("DIMENSIONS 2 2 2"), std::string::npos);
  EXPECT_NE(text.find("SCALARS fission_rate double 1"), std::string::npos);
  EXPECT_THROW(write_vtk_volume(path, "x", 2, 2, 2, 1, 1, 1,
                                std::vector<double>(7)),
               Error);
}

TEST(Writers, UnwritablePathThrows) {
  const auto model = models::build_pin_cell(1, 1.0);
  std::vector<double> rate(model.geometry.num_fsrs(), 0.0);
  std::vector<double> vol(model.geometry.num_fsrs(), 1.0);
  EXPECT_THROW(write_fission_rate_csv("/nonexistent_dir/f.csv",
                                      model.geometry, rate, vol),
               Error);
}

TEST(FormatTable, AlignsColumns) {
  const std::string t = format_table({"name", "value"},
                                     {{"alpha", "1"}, {"b", "22.5"}});
  EXPECT_NE(t.find("name"), std::string::npos);
  EXPECT_NE(t.find("-----"), std::string::npos);
  EXPECT_NE(t.find("alpha"), std::string::npos);
  // Every line has the same width structure (two columns).
  std::istringstream lines(t);
  std::string line;
  std::getline(lines, line);
  const auto header_len = line.size();
  std::getline(lines, line);  // rule
  std::getline(lines, line);  // first row
  EXPECT_EQ(line.size(), header_len);
}

TEST(FormatTable, RejectsRaggedRows) {
  EXPECT_THROW(format_table({"a", "b"}, {{"only-one"}}), Error);
}

}  // namespace
}  // namespace antmoc::io
