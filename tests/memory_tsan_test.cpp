/// \file memory_tsan_test.cpp
/// Concurrency suite for the compact segment stores, labeled for the tsan
/// preset (`ctest --test-dir build-tsan -L fault`): races concurrent
/// readers over one compact TrackManager's SoA lanes, the fork-join host
/// sweep in compact mode, concurrent solvers reading one immutable
/// compact EventArrays instance, and compact host/device solves running
/// side by side — so any race in the compact fill or the shared lane
/// reads trips the sanitizer.

#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/event_sweep.h"
#include "solver/gpu_solver.h"
#include "solver/track_policy.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem small_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return Problem(models::build_core(opt), 4, 0.5, 2, 1.0);
}

TEST(CompactStoreConcurrency, ConcurrentReplayOverOneCompactManager) {
  Problem p = small_problem();
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
  TrackManager manager(p.stacks, TrackPolicy::kExplicit, &device, 0, nullptr,
                       TrackStorage::kCompact);
  ASSERT_EQ(manager.storage(), TrackStorage::kCompact);

  const long num_tracks = p.stacks.num_tracks();
  std::vector<double> sums(4, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      double sum = 0.0;
      for (long id = 0; id < num_tracks; ++id) {
        const bool forward = ((id + t) % 2) == 0;
        manager.for_each_resident_segment(
            id, forward, [&](long fsr, double len) {
              sum += len + static_cast<double>(fsr % 7);
            });
      }
      sums[t] = sum;
    });
  }
  for (auto& th : threads) th.join();
  // The lanes are immutable after construction: direction-independent
  // chord sums agree across every concurrent reader.
  EXPECT_GT(sums[0], 0.0);
  for (int t = 1; t < 4; ++t) EXPECT_EQ(sums[0], sums[t]) << t;
}

TEST(CompactStoreConcurrency, ParallelHostCompactSweepIsRaceFree) {
  Problem p = small_problem();
  CpuSolver solver(p.stacks, p.model.materials, 4, TemplateMode::kAuto,
                   SweepBackend::kHistory, TrackStorage::kCompact);
  SolveOptions opts;
  opts.fixed_iterations = 3;
  const auto r = solver.solve(opts);
  EXPECT_GT(r.k_eff, 0.0);
}

TEST(CompactStoreConcurrency, ConcurrentSolversShareOneCompactEventArrays) {
  Problem p = small_problem();
  const TrackInfoCache cache(p.stacks);
  const EventArrays events(p.stacks, cache, nullptr, 7, nullptr, nullptr,
                           TrackStorage::kCompact);
  ASSERT_EQ(events.storage(), TrackStorage::kCompact);

  std::vector<double> k(3, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      CpuSolver solver(p.stacks, p.model.materials, 2, TemplateMode::kOff,
                       SweepBackend::kEvent, TrackStorage::kCompact);
      solver.set_shared_events(&events);
      SolveOptions opts;
      opts.fixed_iterations = 3;
      k[t] = solver.solve(opts).k_eff;
    });
  }
  for (auto& th : threads) th.join();
  // Immutable shared compact lanes: every reader computes the same answer.
  EXPECT_EQ(k[0], k[1]);
  EXPECT_EQ(k[0], k[2]);
}

TEST(CompactStoreConcurrency, HostAndDeviceCompactSolvesRunSideBySide) {
  Problem p = small_problem();
  std::array<double, 2> k = {0.0, 0.0};
  std::thread host([&] {
    CpuSolver solver(p.stacks, p.model.materials, 2, TemplateMode::kAuto,
                     SweepBackend::kHistory, TrackStorage::kCompact);
    SolveOptions opts;
    opts.fixed_iterations = 3;
    k[0] = solver.solve(opts).k_eff;
  });
  std::thread dev([&] {
    gpusim::Device device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 8));
    GpuSolverOptions opts;
    opts.policy = TrackPolicy::kExplicit;
    opts.storage = TrackStorage::kCompact;
    GpuSolver solver(p.stacks, p.model.materials, device, opts);
    SolveOptions sopts;
    sopts.fixed_iterations = 3;
    k[1] = solver.solve(sopts).k_eff;
  });
  host.join();
  dev.join();
  EXPECT_GT(k[0], 0.0);
  EXPECT_GT(k[1], 0.0);
}

}  // namespace
}  // namespace antmoc
