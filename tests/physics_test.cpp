#include <gtest/gtest.h>

#include <map>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/exponential.h"
#include "solver/tallies.h"
#include "util/error.h"

namespace antmoc {
namespace {

/// One solved C5G7 core configuration (memoized: each rod configuration
/// is expensive, and several tests share them).
struct SolvedCore {
  SolveResult result;
  std::vector<double> fission;
  std::vector<double> volumes;
};

const SolvedCore& solve_core(models::RodConfig config) {
  static std::map<models::RodConfig, SolvedCore> cache;
  const auto it = cache.find(config);
  if (it != cache.end()) return it->second;

  models::C5G7Options opt;
  opt.pins_per_assembly = 17;  // rod maps exist only at benchmark size
  opt.fuel_layers = 3;
  opt.reflector_layers = 1;
  opt.height_scale = 0.10;
  opt.config = config;
  const auto model = models::build_core(opt);
  const Geometry& g = model.geometry;

  const Quadrature quad(4, 0.8, g.bounds().width_x(),
                        g.bounds().width_y(), 1);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kVacuum,
                        LinkKind::kReflective, LinkKind::kVacuum});
  gen.trace(g);
  const TrackStacks stacks(gen, g, g.bounds().z_min, g.bounds().z_max,
                           2.0);
  CpuSolver solver(stacks, model.materials);

  SolveOptions opts;
  opts.tolerance = 1e-5;
  opts.max_iterations = 10000;
  SolvedCore solved;
  solved.result = solver.solve(opts);
  solved.fission = solver.fsr().fission_rate();
  solved.volumes = solver.fsr().volumes();
  return cache.emplace(config, std::move(solved)).first->second;
}

TEST(RodWorth, ControlRodInsertionReducesK) {
  // The C5G7 3D extension's physical point: inserting control rods into
  // the guide tubes lowers reactivity, deeper/wider insertion lowers it
  // more (unrodded > rodded A > rodded B).
  const auto& unrodded = solve_core(models::RodConfig::kUnrodded).result;
  const auto& rodded_a = solve_core(models::RodConfig::kRoddedA).result;
  const auto& rodded_b = solve_core(models::RodConfig::kRoddedB).result;
  ASSERT_TRUE(unrodded.converged);
  ASSERT_TRUE(rodded_a.converged);
  ASSERT_TRUE(rodded_b.converged);
  EXPECT_GT(unrodded.k_eff, rodded_a.k_eff + 1e-5)
      << "rod worth A: " << unrodded.k_eff - rodded_a.k_eff;
  EXPECT_GT(rodded_a.k_eff, rodded_b.k_eff + 1e-5)
      << "rod worth B-A: " << rodded_a.k_eff - rodded_b.k_eff;
}

TEST(RodWorth, RodsDepressLocalFissionRate) {
  const auto& un = solve_core(models::RodConfig::kUnrodded);
  const auto& ra = solve_core(models::RodConfig::kRoddedA);
  const auto &f_un = un.fission, &v_un = un.volumes;
  const auto &f_a = ra.fission, &v_a = ra.volumes;

  // The inner UO2 assembly (rodded in A) loses power share relative to
  // the outer UO2 assembly (unrodded in A).
  models::C5G7Options opt;
  opt.pins_per_assembly = 17;
  opt.height_scale = 0.10;
  const auto model = models::build_core(opt);
  const auto map_un =
      tallies::radial_power_map(model.geometry, f_un, v_un, 3, 3);
  const auto map_a =
      tallies::radial_power_map(model.geometry, f_a, v_a, 3, 3);
  const double share_un = map_un[0] / map_un[4];  // inner / outer UO2
  const double share_a = map_a[0] / map_a[4];
  EXPECT_LT(share_a, share_un);
}

TEST(AxialShape, TopReflectorDepressesUpperPower) {
  // The unrodded core has fuel below and a water reflector above with a
  // vacuum top: the axial profile must fall toward the top fuel layer.
  const auto& un = solve_core(models::RodConfig::kUnrodded);
  const auto &fission = un.fission, &volumes = un.volumes;
  models::C5G7Options opt;
  opt.pins_per_assembly = 17;
  opt.height_scale = 0.10;
  const auto model = models::build_core(opt);
  const auto profile =
      tallies::axial_power_profile(model.geometry, fission, volumes);
  ASSERT_EQ(profile.size(), 4u);
  // Bottom (reflective midplane) is the hottest fuel layer; the water
  // reflector itself has no fission. The top fuel layer may sit slightly
  // above the middle one — the classic reflector flux peak from thermal
  // neutrons returning out of the water — so no monotonicity is asserted
  // between the upper fuel layers.
  EXPECT_GT(profile[0], profile[1]);
  EXPECT_GT(profile[0], profile[2]);
  EXPECT_DOUBLE_EQ(profile[3], 0.0);
  for (int l = 0; l < 3; ++l) EXPECT_NEAR(profile[l], 1.0, 0.1);
}

TEST(ExpTableSolve, TableEvaluatorReproducesExactK) {
  const auto model = models::build_pin_cell(2, 2.0);
  const Geometry& g = model.geometry;
  const Quadrature quad(4, 0.2, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  const TrackStacks stacks(gen, g, 0.0, 2.0, 0.5);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  CpuSolver exact(stacks, model.materials);
  const double k_exact = exact.solve(opts).k_eff;

  const ExpTable table(40.0, 1e-7);
  CpuSolver tabulated(stacks, model.materials);
  tabulated.set_exp_table(&table);
  const double k_table = tabulated.solve(opts).k_eff;

  EXPECT_NEAR(k_table, k_exact, 5e-5 * k_exact);

  // A deliberately coarse table shifts k measurably more.
  const ExpTable coarse(40.0, 1e-2);
  CpuSolver sloppy(stacks, model.materials);
  sloppy.set_exp_table(&coarse);
  const double k_coarse = sloppy.solve(opts).k_eff;
  EXPECT_GT(std::abs(k_coarse - k_exact), std::abs(k_table - k_exact));
}

}  // namespace
}  // namespace antmoc
