#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/domain_solver.h"
#include "util/error.h"

namespace antmoc {
namespace {

// ---------------------------------------------------------- Decomposition ---

TEST(Decomposition, CoordsRoundTrip) {
  const Decomposition d{2, 3, 4};
  EXPECT_EQ(d.num_domains(), 24);
  for (int r = 0; r < d.num_domains(); ++r) {
    const auto [i, j, k] = d.coords(r);
    EXPECT_EQ(d.rank_of(i, j, k), r);
  }
}

TEST(Decomposition, NeighborsAreMutual) {
  const Decomposition d{2, 2, 2};
  for (int r = 0; r < d.num_domains(); ++r)
    for (int f = 0; f < 6; ++f) {
      const Face face = static_cast<Face>(f);
      const int n = d.neighbor(r, face);
      if (n < 0) continue;
      EXPECT_EQ(d.neighbor(n, opposite_face(face)), r);
    }
}

TEST(Decomposition, OuterFacesHaveNoNeighbor) {
  const Decomposition d{2, 2, 2};
  EXPECT_EQ(d.neighbor(d.rank_of(0, 0, 0), Face::kXMin), -1);
  EXPECT_EQ(d.neighbor(d.rank_of(1, 1, 1), Face::kXMax), -1);
  EXPECT_EQ(d.neighbor(d.rank_of(0, 0, 0), Face::kZMin), -1);
  EXPECT_GE(d.neighbor(d.rank_of(0, 0, 0), Face::kXMax), 0);
}

TEST(Decomposition, DomainBoundsTileTheGlobalBox) {
  const Decomposition d{2, 2, 2};
  Bounds global;
  global.x_max = 4.0;
  global.y_max = 6.0;
  global.z_min = 1.0;
  global.z_max = 3.0;
  double volume = 0.0;
  for (int r = 0; r < d.num_domains(); ++r) {
    const Bounds b = d.domain_bounds(global, r);
    volume += b.width_x() * b.width_y() * b.width_z();
    EXPECT_GE(b.x_min, global.x_min - 1e-12);
    EXPECT_LE(b.z_max, global.z_max + 1e-12);
  }
  EXPECT_NEAR(volume, 4.0 * 6.0 * 2.0, 1e-9);
}

TEST(Decomposition, RadialKindsInterfaceTowardNeighbors) {
  const auto model = models::build_pin_cell(1, 1.0);
  const Decomposition d{2, 1, 1};
  const auto kinds0 = d.radial_kinds(model.geometry, 0);
  EXPECT_EQ(kinds0[static_cast<int>(Face::kXMax)], LinkKind::kInterface);
  // Outer faces inherit the geometry BCs (pin cell: reflective).
  EXPECT_EQ(kinds0[static_cast<int>(Face::kXMin)], LinkKind::kReflective);
  EXPECT_EQ(d.z_kind(model.geometry, 0, Face::kZMin),
            LinkKind::kReflective);
}

// ----------------------------------------------------------- domain solve ---

DomainRunParams pin_params() {
  DomainRunParams p;
  p.num_azim = 4;
  p.azim_spacing = 0.2;
  p.num_polar = 1;
  p.z_spacing = 0.5;
  return p;
}

TEST(DomainSolver, SingleDomainMatchesPlainSolver) {
  const auto model = models::build_pin_cell(2, 2.0);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  const auto summary = solve_decomposed(model.geometry, model.materials,
                                        {1, 1, 1}, pin_params(), opts);
  ASSERT_TRUE(summary.result.converged);

  // Plain solver on the identical laydown.
  const auto& g = model.geometry;
  const Quadrature quad(4, 0.2, g.bounds().width_x(), g.bounds().width_y(),
                        1);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  const TrackStacks stacks(gen, g, 0.0, 2.0, 0.5);
  CpuSolver solver(stacks, model.materials);
  const auto plain = solver.solve(opts);

  EXPECT_NEAR(summary.result.k_eff, plain.k_eff, 1e-6 * plain.k_eff);
  EXPECT_EQ(summary.flux_bytes_per_iter, 0u);
  EXPECT_DOUBLE_EQ(summary.domain_load_uniformity, 1.0);
}

TEST(DomainSolver, DecomposedKMatchesSingleDomain) {
  // 2x2x2 decomposition cuts straight through the fuel pin; the track
  // laydown differs per sub-box so agreement is to discretization, not
  // bitwise.
  const auto model = models::build_pin_cell(2, 2.0);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  const auto single = solve_decomposed(model.geometry, model.materials,
                                       {1, 1, 1}, pin_params(), opts);
  const auto split = solve_decomposed(model.geometry, model.materials,
                                      {2, 2, 2}, pin_params(), opts);
  ASSERT_TRUE(single.result.converged);
  ASSERT_TRUE(split.result.converged);
  EXPECT_NEAR(split.result.k_eff, single.result.k_eff,
              0.01 * single.result.k_eff);
  EXPECT_GT(split.flux_bytes_per_iter, 0u);
  EXPECT_GE(split.domain_load_uniformity, 1.0);
}

TEST(DomainSolver, GpuEngineMatchesCpuEngineOnSameDecomposition) {
  // The §5.1 correctness experiment: ANT-MOC's device path vs the host
  // reference on identical tracks — pin-wise fission rates should agree
  // to solver precision ("relative error all zero" in the paper).
  const auto model = models::build_pin_cell(2, 2.0);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  auto params = pin_params();
  const auto cpu = solve_decomposed(model.geometry, model.materials,
                                    {2, 1, 1}, params, opts);
  params.use_device = true;
  params.device_spec = gpusim::DeviceSpec::scaled(1 << 28, 8);
  params.gpu_options.policy = TrackPolicy::kManaged;
  params.gpu_options.resident_budget_bytes = 1 << 16;
  const auto gpu = solve_decomposed(model.geometry, model.materials,
                                    {2, 1, 1}, params, opts);

  ASSERT_TRUE(cpu.result.converged);
  ASSERT_TRUE(gpu.result.converged);
  EXPECT_NEAR(gpu.result.k_eff, cpu.result.k_eff,
              1e-5 * cpu.result.k_eff);
  ASSERT_EQ(cpu.fission_rate.size(), gpu.fission_rate.size());
  for (std::size_t i = 0; i < cpu.fission_rate.size(); ++i)
    if (cpu.fission_rate[i] > 0.0) {
      EXPECT_NEAR(gpu.fission_rate[i] / cpu.fission_rate[i], 1.0, 1e-3)
          << "fsr " << i;
    }
}

TEST(DomainSolver, FluxBytesMatchEqSevenStructure) {
  // Per-iteration interface traffic = (crossing track ends) * G * 4 bytes;
  // it must be bounded by the Eq. 7 full-state volume
  // N3D * 2 * num_groups * 4 and positive for a real decomposition.
  const auto model = models::build_pin_cell(1, 2.0);
  SolveOptions opts;
  opts.fixed_iterations = 2;
  const auto split = solve_decomposed(model.geometry, model.materials,
                                      {1, 1, 2}, pin_params(), opts);
  EXPECT_GT(split.flux_bytes_per_iter, 0u);
  const std::uint64_t eq7 = static_cast<std::uint64_t>(
      split.total_tracks_3d) * 2 * 7 * 4;
  EXPECT_LT(split.flux_bytes_per_iter, eq7);
}

TEST(DomainSolver, AxialDecompositionMatchesRadial) {
  // The same physical problem split along z or along x must agree.
  const auto model = models::build_pin_cell(2, 2.0);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;
  const auto axial = solve_decomposed(model.geometry, model.materials,
                                      {1, 1, 2}, pin_params(), opts);
  const auto radial = solve_decomposed(model.geometry, model.materials,
                                       {2, 1, 1}, pin_params(), opts);
  ASSERT_TRUE(axial.result.converged);
  ASSERT_TRUE(radial.result.converged);
  EXPECT_NEAR(axial.result.k_eff, radial.result.k_eff,
              0.01 * radial.result.k_eff);
}

TEST(DomainSolver, TracksAndSegmentsAccumulateAcrossDomains) {
  const auto model = models::build_pin_cell(1, 2.0);
  SolveOptions opts;
  opts.fixed_iterations = 1;
  const auto split = solve_decomposed(model.geometry, model.materials,
                                      {2, 2, 1}, pin_params(), opts);
  EXPECT_GT(split.total_tracks_3d, 0);
  EXPECT_GT(split.total_segments_3d, split.total_tracks_3d);
  EXPECT_GT(split.total_bytes_sent, 0u);
  EXPECT_EQ(split.scalar_flux.size(),
            static_cast<std::size_t>(model.geometry.num_fsrs()) * 7);
}

}  // namespace
}  // namespace antmoc
