#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/runtime.h"
#include "util/error.h"

namespace antmoc::comm {
namespace {

TEST(Runtime, SingleRankRunsInline) {
  int visits = 0;
  Runtime::run(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Runtime, AllRanksExecute) {
  constexpr int kRanks = 4;
  std::vector<int> visited(kRanks, 0);
  Runtime::run(kRanks, [&](Communicator& comm) {
    visited[comm.rank()] = 1;
    EXPECT_EQ(comm.size(), kRanks);
  });
  EXPECT_EQ(std::accumulate(visited.begin(), visited.end(), 0), kRanks);
}

TEST(Runtime, RethrowsRankException) {
  EXPECT_THROW(Runtime::run(1,
                            [](Communicator&) {
                              fail<SolverError>("rank blew up");
                            }),
               SolverError);
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(Runtime::run(0, [](Communicator&) {}), Error);
}

TEST(Comm, PointToPointRoundTrip) {
  Runtime::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> out{1.5, 2.5, 3.5};
      comm.send(1, /*tag=*/7, out);
      std::vector<double> back(3);
      comm.recv(1, /*tag=*/8, back);
      EXPECT_EQ(back, (std::vector<double>{3.0, 5.0, 7.0}));
    } else {
      std::vector<double> in(3);
      comm.recv(0, 7, in);
      for (auto& v : in) v = 2.0 * v;
      comm.send(0, 8, in);
    }
  });
}

TEST(Comm, TagsAreMatchedNotOrdered) {
  // Send two tags, receive them in the opposite order.
  Runtime::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> a{1}, b{2};
      comm.send(1, 100, a);
      comm.send(1, 200, b);
    } else {
      std::vector<int> b(1), a(1);
      comm.recv(0, 200, b);
      comm.recv(0, 100, a);
      EXPECT_EQ(a[0], 1);
      EXPECT_EQ(b[0], 2);
    }
  });
}

TEST(Comm, SendrecvExchangesWithPeerWithoutDeadlock) {
  // Both ranks post their send first (buffered), then receive: the
  // "Buffered Synchronous" pattern from the paper's flux exchange.
  Runtime::run(2, [](Communicator& comm) {
    const int peer = 1 - comm.rank();
    const std::vector<float> out(64, static_cast<float>(comm.rank() + 1));
    std::vector<float> in(64);
    comm.sendrecv(peer, /*tag=*/3, out, in);
    EXPECT_FLOAT_EQ(in[0], static_cast<float>(peer + 1));
    EXPECT_FLOAT_EQ(in[63], static_cast<float>(peer + 1));
  });
}

TEST(Comm, RecvResizesVectorToMatchedMessage) {
  // The vector overload adopts the matched message size: callers need not
  // pre-size the buffer (and mis-sized buffers cannot corrupt memory).
  Runtime::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> out{1, 2, 3};
      comm.send(1, 0, out);
      comm.send(1, 1, out);
    } else {
      std::vector<int> oversized(5, -1);
      comm.recv(0, 0, oversized);
      EXPECT_EQ(oversized, (std::vector<int>{1, 2, 3}));
      std::vector<int> empty;  // undersized: grows to fit
      comm.recv(0, 1, empty);
      EXPECT_EQ(empty, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Comm, RecvRawSizeMismatchThrows) {
  // The raw byte interface still demands an exact size.
  EXPECT_THROW(
      Runtime::run(2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) {
                       const std::vector<int> out{1, 2, 3};
                       comm.send(1, 0, out);
                     } else {
                       int in[5];
                       comm.recv(0, 0, in, sizeof in);  // wrong size
                     }
                   }),
      Error);
}

TEST(Comm, SendToInvalidRankThrows) {
  EXPECT_THROW(Runtime::run(1,
                            [](Communicator& comm) {
                              const std::vector<int> out{1};
                              comm.send(5, 0, out);
                            }),
               Error);
}

TEST(Comm, BarrierSynchronizesRepeatedly) {
  constexpr int kRanks = 4;
  std::atomic<int> phase_counter{0};
  Runtime::run(kRanks, [&](Communicator& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      ++phase_counter;
      comm.barrier();
      // Every rank must observe the full increment of the previous phase.
      EXPECT_EQ(phase_counter.load() % kRanks, 0)
          << "barrier leaked rank " << comm.rank();
      comm.barrier();
    }
  });
}

TEST(Comm, AllreduceSum) {
  Runtime::run(4, [](Communicator& comm) {
    const double total = comm.allreduce(comm.rank() + 1.0, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(total, 1.0 + 2.0 + 3.0 + 4.0);
  });
}

TEST(Comm, AllreduceMaxAndMin) {
  Runtime::run(3, [](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce(double(comm.rank()), ReduceOp::kMax),
                     2.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(double(comm.rank()), ReduceOp::kMin),
                     0.0);
  });
}

TEST(Comm, AllreduceVectorElementwise) {
  Runtime::run(2, [](Communicator& comm) {
    std::vector<double> v{double(comm.rank()), 10.0};
    comm.allreduce(v, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
    EXPECT_DOUBLE_EQ(v[1], 20.0);
  });
}

TEST(Comm, RepeatedAllreducesStayConsistent) {
  // Regression guard for generation handling in the shared reduce slot.
  Runtime::run(3, [](Communicator& comm) {
    for (int i = 1; i <= 50; ++i) {
      const double sum =
          comm.allreduce(static_cast<double>(i * (comm.rank() + 1)),
                         ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(i * 6));
    }
  });
}

TEST(Comm, ByteAccountingMatchesTraffic) {
  const std::uint64_t total = Runtime::run(2, [](Communicator& comm) {
    const std::vector<float> out(100, 1.0f);  // 400 bytes
    std::vector<float> in(100);
    comm.sendrecv(1 - comm.rank(), 0, out, in);
    comm.barrier();
    EXPECT_EQ(comm.bytes_sent(), 400u);
    EXPECT_EQ(comm.messages_sent(), 1u);
    EXPECT_EQ(comm.total_bytes_sent(), 800u);
  });
  EXPECT_EQ(total, 800u);
}

TEST(Comm, BroadcastFromEveryRoot) {
  Runtime::run(3, [](Communicator& comm) {
    for (int root = 0; root < 3; ++root) {
      std::vector<double> v(4, comm.rank() == root ? 7.5 : 0.0);
      comm.broadcast(v, root);
      for (double x : v) EXPECT_DOUBLE_EQ(x, 7.5);
      comm.barrier();
    }
  });
}

TEST(Comm, GatherCollectsInRankOrder) {
  Runtime::run(4, [](Communicator& comm) {
    const std::vector<int> local{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<int> all;
    comm.gather(local, all, /*root=*/1);
    if (comm.rank() == 1) {
      ASSERT_EQ(all.size(), 8u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[r * 2], r * 10);
        EXPECT_EQ(all[r * 2 + 1], r * 10 + 1);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, ManyRanksNeighborRing) {
  // Each rank sends to (rank+1) % size and receives from the other side:
  // the 1D analogue of the spatial-decomposition neighbor exchange.
  constexpr int kRanks = 8;
  Runtime::run(kRanks, [](Communicator& comm) {
    const int next = (comm.rank() + 1) % kRanks;
    const int prev = (comm.rank() + kRanks - 1) % kRanks;
    const std::vector<int> out{comm.rank()};
    std::vector<int> in(1);
    comm.send(next, 1, out);
    comm.recv(prev, 1, in);
    EXPECT_EQ(in[0], prev);
  });
}

// ------------------------------------------- Byte accounting (per rank) ---
// The per-source-rank bytes_sent counters back the paper's Eq. 7
// communication-volume validation (and telemetry's comm.bytes_sent
// metrics), so they must match actual payload sizes exactly.

TEST(CommBytes, SendAndRecvBytesCountExactPayload) {
  const std::uint64_t total = Runtime::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> payload(13, 2.0);  // 104 bytes
      comm.send(1, 5, payload);
      EXPECT_EQ(comm.bytes_sent(), 104u);
      EXPECT_EQ(comm.messages_sent(), 1u);
    } else {
      const auto raw = comm.recv_bytes(0, 5);
      EXPECT_EQ(raw.size(), 104u);
      EXPECT_EQ(comm.bytes_sent(), 0u);
      EXPECT_EQ(comm.messages_sent(), 0u);
    }
    comm.barrier();
    EXPECT_EQ(comm.total_bytes_sent(), 104u);
  });
  EXPECT_EQ(total, 104u);
}

TEST(CommBytes, ZeroLengthMessageCountsZeroBytesOneMessage) {
  const std::uint64_t total = Runtime::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> empty;
      comm.send(1, 9, empty);
      EXPECT_EQ(comm.bytes_sent(), 0u);
      EXPECT_EQ(comm.messages_sent(), 1u);
    } else {
      const auto raw = comm.recv_bytes(0, 9);
      EXPECT_TRUE(raw.empty());
    }
    comm.barrier();
    EXPECT_EQ(comm.total_bytes_sent(), 0u);
  });
  EXPECT_EQ(total, 0u);
}

TEST(CommBytes, BroadcastChargesRootOncePerReceiver) {
  Runtime::run(4, [](Communicator& comm) {
    std::vector<float> v(8, comm.rank() == 2 ? 3.0f : 0.0f);  // 32 bytes
    comm.broadcast(v, /*root=*/2);
    comm.barrier();
    if (comm.rank() == 2) {
      EXPECT_EQ(comm.bytes_sent(), 3u * 32u);
      EXPECT_EQ(comm.messages_sent(), 3u);
    } else {
      EXPECT_EQ(comm.bytes_sent(), 0u);
      EXPECT_EQ(comm.messages_sent(), 0u);
    }
    EXPECT_EQ(comm.total_bytes_sent(), 96u);
  });
}

TEST(CommBytes, GatherChargesEveryNonRootItsContribution) {
  Runtime::run(3, [](Communicator& comm) {
    const std::vector<int> local{comm.rank(), comm.rank()};  // 8 bytes
    std::vector<int> all;
    comm.gather(local, all, /*root=*/0);
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.bytes_sent(), 0u);
      EXPECT_EQ(comm.messages_sent(), 0u);
    } else {
      EXPECT_EQ(comm.bytes_sent(), 2u * sizeof(int));
      EXPECT_EQ(comm.messages_sent(), 1u);
    }
    EXPECT_EQ(comm.total_bytes_sent(), 16u);
  });
}

}  // namespace
}  // namespace antmoc::comm
