/// \file quickstart.cpp
/// Smallest end-to-end ANT-MOC run: build a UO2 pin cell, lay cyclic 2D
/// tracks, stack 3D tracks on them, and power-iterate the 7-group MOC
/// transport solve to k-infinity of the pin lattice.
///
///   ./quickstart [--azim=8] [--spacing=0.1] [--polar=2] [--dz=0.25]
///                [--tolerance=1e-6]

#include <cstdio>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "util/cli.h"

using namespace antmoc;

int main(int argc, char** argv) {
  const Config cfg = parse_cli(argc, argv);
  const int num_azim = static_cast<int>(cfg.get_int("azim", 8));
  const double spacing = cfg.get_double("spacing", 0.1);
  const int num_polar = static_cast<int>(cfg.get_int("polar", 2));
  const double dz = cfg.get_double("dz", 0.25);

  // 1. Geometry + materials: a single C5G7 UO2 pin cell, reflective on
  //    every face (an infinite pin lattice).
  const models::C5G7Model model = models::build_pin_cell(
      /*axial_layers=*/4, /*height=*/4.0);
  const Geometry& g = model.geometry;

  // 2. Angular quadrature and cyclic 2D track laydown for this box.
  const Quadrature quad(num_azim, spacing, g.bounds().width_x(),
                        g.bounds().width_y(), num_polar);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);

  // 3. 3D track stacks (the OTF index; no 3D segment is stored).
  const TrackStacks stacks(gen, g, g.bounds().z_min, g.bounds().z_max, dz);

  std::printf("pin cell: %d FSRs, %d 2D tracks (%ld 2D segments), "
              "%ld 3D tracks, %ld 3D segments (on the fly)\n",
              static_cast<int>(g.num_fsrs()), gen.num_tracks(),
              gen.num_segments(), stacks.num_tracks(),
              stacks.total_segments());

  // 4. Solve the k-eigenvalue problem on the host reference solver.
  CpuSolver solver(stacks, model.materials);
  SolveOptions opts;
  opts.tolerance = cfg.get_double("tolerance", 1e-6);
  opts.max_iterations = 20000;
  const SolveResult result = solver.solve(opts);

  std::printf("k_eff = %.6f after %d iterations (converged: %s)\n",
              result.k_eff, result.iterations,
              result.converged ? "yes" : "no");

  // 5. Group fluxes in the fuel, normalized.
  const int fuel = g.find_radial({0.63, 0.63}).region;
  const long fsr = g.fsr_id(fuel, 0);
  double norm = 0.0;
  for (int gr = 0; gr < 7; ++gr) norm += solver.fsr().flux(fsr, gr);
  std::printf("fuel spectrum:");
  for (int gr = 0; gr < 7; ++gr)
    std::printf(" %.4f", solver.fsr().flux(fsr, gr) / norm);
  std::printf("\n");
  return result.converged ? 0 : 1;
}
