/// \file track_management.cpp
/// Demonstrates the paper's track-management strategy (§4.1) interactively:
/// the same problem solved under EXP, OTF, and Manager on a small-memory
/// simulated device, showing the memory/recomputation trade-off and the
/// Table 3-style arena breakdown for each.
///
///   ./track_management [--memory_mib=24] [--budget_frac=0.2]

#include <cstdio>

#include "models/c5g7_model.h"
#include "solver/gpu_solver.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace antmoc;

int main(int argc, char** argv) {
  const Config cfg = parse_cli(argc, argv);
  const std::size_t memory =
      static_cast<std::size_t>(cfg.get_int("memory_mib", 24)) << 20;
  const double budget_frac = cfg.get_double("budget_frac", 0.08);

  models::C5G7Options mopt;
  mopt.pins_per_assembly = 5;
  mopt.height_scale = 0.15;
  const auto model = models::build_core(mopt);
  const Geometry& g = model.geometry;

  const Quadrature quad(4, 0.18, g.bounds().width_x(),
                        g.bounds().width_y(), 2);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kVacuum,
                        LinkKind::kReflective, LinkKind::kVacuum});
  gen.trace(g);
  const TrackStacks stacks(gen, g, g.bounds().z_min, g.bounds().z_max,
                           1.0);
  std::printf("%ld 3D tracks, %ld 3D segments (%.1f MiB if stored), "
              "device %.0f MiB\n",
              stacks.num_tracks(), stacks.total_segments(),
              double(stacks.total_segments() * sizeof(Segment3D)) /
                  (1 << 20),
              double(memory) / (1 << 20));

  for (TrackPolicy policy : {TrackPolicy::kExplicit, TrackPolicy::kOnTheFly,
                             TrackPolicy::kManaged}) {
    const char* name = policy == TrackPolicy::kExplicit   ? "EXP    "
                       : policy == TrackPolicy::kOnTheFly ? "OTF    "
                                                          : "Manager";
    gpusim::Device device(gpusim::DeviceSpec::scaled(memory, 16));
    GpuSolverOptions opts;
    opts.policy = policy;
    opts.resident_budget_bytes =
        static_cast<std::size_t>(memory * budget_frac);
    try {
      GpuSolver solver(stacks, model.materials, device, opts);
      SolveOptions sopts;
      sopts.fixed_iterations = 5;
      Timer wall;
      wall.start();
      solver.solve(sopts);
      wall.stop();
      std::printf(
          "%s  wall %.3f s  modeled sweep %.3f ms/iter  peak mem %.1f "
          "MiB  resident %5.1f%%\n",
          name, wall.seconds(),
          1e3 *
              device.kernel_accum().at("transport_sweep").modeled_seconds /
              5,
          double(device.memory().peak_used()) / (1 << 20),
          100.0 * solver.manager().resident_fraction());
    } catch (const DeviceOutOfMemory& e) {
      std::printf("%s  OUT OF DEVICE MEMORY (%s)\n", name, e.what());
    }
  }
  return 0;
}
