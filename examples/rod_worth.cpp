/// \file rod_worth.cpp
/// Domain-specific study on the C5G7 3D extension's reason for existing:
/// control-rod worth. Solves the unrodded, rodded-A and rodded-B
/// configurations on the full 17x17 benchmark lattice (reduced height)
/// and reports k_eff, rod worth in pcm, assembly powers, and the axial
/// power shape distortion caused by partial insertion.
///
///   ./rod_worth [--height_scale=0.1] [--spacing=0.8] [--tolerance=1e-5]

#include <cstdio>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/tallies.h"
#include "util/cli.h"

using namespace antmoc;

namespace {

struct CaseResult {
  double k = 0.0;
  std::vector<double> assembly_power;
  std::vector<double> axial;
};

CaseResult run_case(models::RodConfig config, const Config& cfg) {
  models::C5G7Options opt;
  opt.pins_per_assembly = 17;
  opt.fuel_layers = 3;
  opt.height_scale = cfg.get_double("height_scale", 0.1);
  opt.config = config;
  const auto model = models::build_core(opt);
  const Geometry& g = model.geometry;

  const Quadrature quad(4, cfg.get_double("spacing", 0.8),
                        g.bounds().width_x(), g.bounds().width_y(), 1);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kVacuum,
                        LinkKind::kReflective, LinkKind::kVacuum});
  gen.trace(g);
  const TrackStacks stacks(gen, g, g.bounds().z_min, g.bounds().z_max,
                           2.0);
  CpuSolver solver(stacks, model.materials);
  SolveOptions opts;
  opts.tolerance = cfg.get_double("tolerance", 1e-5);
  opts.max_iterations = 10000;
  const auto result = solver.solve(opts);

  CaseResult out;
  out.k = result.k_eff;
  const auto fission = solver.fsr().fission_rate();
  out.assembly_power = tallies::radial_power_map(
      g, fission, solver.fsr().volumes(), 3, 3);
  out.axial =
      tallies::axial_power_profile(g, fission, solver.fsr().volumes());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_cli(argc, argv);

  const auto unrodded = run_case(models::RodConfig::kUnrodded, cfg);
  const auto rodded_a = run_case(models::RodConfig::kRoddedA, cfg);
  const auto rodded_b = run_case(models::RodConfig::kRoddedB, cfg);

  auto pcm = [&](double k) {
    return 1e5 * (1.0 / k - 1.0 / unrodded.k);
  };
  std::printf("configuration   k_eff      worth (pcm)\n");
  std::printf("unrodded        %.6f   -\n", unrodded.k);
  std::printf("rodded A        %.6f   %.0f\n", rodded_a.k, pcm(rodded_a.k));
  std::printf("rodded B        %.6f   %.0f\n", rodded_b.k, pcm(rodded_b.k));

  std::printf("\nassembly power (inner UO2 / MOX / outer UO2), "
              "normalized to unrodded inner UO2:\n");
  const double norm = unrodded.assembly_power[0];
  auto row = [&](const char* name, const CaseResult& c) {
    std::printf("%-10s %.3f  %.3f  %.3f\n", name,
                c.assembly_power[0] / norm, c.assembly_power[1] / norm,
                c.assembly_power[4] / norm);
  };
  row("unrodded", unrodded);
  row("rodded A", rodded_a);
  row("rodded B", rodded_b);

  std::printf("\naxial power profile (bottom -> top, fueled layers):\n");
  auto axial_row = [&](const char* name, const CaseResult& c) {
    std::printf("%-10s", name);
    for (double p : c.axial)
      if (p > 0.0) std::printf("  %.3f", p);
    std::printf("\n");
  };
  axial_row("unrodded", unrodded);
  axial_row("rodded A", rodded_a);
  axial_row("rodded B", rodded_b);
  return 0;
}
