/// \file scaling_study.cpp
/// Drives the cluster simulator interactively: pick strong/weak scaling,
/// GPU counts, and mapping levels, and print the Fig. 11/12-style series.
///
///   ./scaling_study [--mode=strong|weak] [--max_gpus=16000]
///                   [--l1=true --l2=true --l3=true]

#include <cstdio>

#include "cluster/scaling.h"
#include "util/cli.h"

using namespace antmoc;
using namespace antmoc::cluster;

int main(int argc, char** argv) {
  const Config cfg = parse_cli(argc, argv);
  const bool strong = cfg.get_string("mode", "strong") == "strong";

  WorkloadSpec workload;
  workload.strong = strong;
  workload.tracks_per_gpu_base = strong ? 54581544 : 5124596;

  MappingConfig mapping;
  mapping.l1 = cfg.get_bool("l1", true);
  mapping.l2 = cfg.get_bool("l2", true);
  mapping.l3 = cfg.get_bool("l3", true);

  std::vector<int> counts;
  const int max_gpus = static_cast<int>(cfg.get_int("max_gpus", 16000));
  for (int n = 1000; n <= max_gpus; n *= 2) counts.push_back(n);

  const ScalingSimulator sim(MachineSpec{}, workload);
  const auto points = sim.sweep(counts, mapping);

  std::printf("%s scaling, mapping L1=%d L2=%d L3=%d\n",
              strong ? "strong" : "weak", mapping.l1, mapping.l2,
              mapping.l3);
  std::printf("%8s %12s %12s %10s %10s %10s\n", "GPUs", "t/iter(s)",
              "compute(s)", "comm(s)", "efficiency", "resident");
  for (const auto& pt : points)
    std::printf("%8d %12.5f %12.5f %10.5f %9.1f%% %9.2f\n", pt.gpus,
                pt.time_per_iteration_s, pt.compute_s, pt.comm_s,
                100.0 * pt.efficiency, pt.resident_fraction);
  return 0;
}
