/// \file c5g7_core.cpp
/// The paper's flagship workload end to end: the C5G7 3D extension core
/// (Fig. 6) solved with spatial decomposition across simulated GPUs, one
/// in-process rank per sub-geometry, exactly the §3.1 pipeline:
/// read configuration -> geometry construction -> track generation & ray
/// tracing -> transport solve -> output generation (fission-rate CSV,
/// pin-power map, and a ParaView-compatible VTK volume — the Fig. 7 data).
///
///   ./c5g7_core [--config=examples/c5g7.yaml] [--pins=5] [--domains=2]
///               [--device=true] [--rodded=A|B] [--out=./] [--telemetry]
///
/// With --telemetry (or telemetry.* config keys) the run additionally
/// emits a Chrome trace (kernel, comm, and iteration spans) and a JSONL
/// metrics dump (per-CU utilization, per-rank comm bytes, per-iteration
/// residuals) — see DESIGN.md §6.
///
/// With --serve the binary instead runs the scenario engine (DESIGN.md
/// §12): one Session warms the shared caches for the core, then a batch
/// of scenarios (--engine.scenarios=<file>, or a built-in ladder) is
/// scheduled across the simulated-device pool; prints a per-job result
/// table and the jobs/s achieved. Engine knobs: engine.devices,
/// engine.max_concurrent, engine.jobs, engine.fixed_iterations,
/// engine.scenarios.

#include <cstdio>

#include "cmfd/coarse_mesh.h"
#include "engine/scenario.h"
#include "engine/session.h"
#include "io/writers.h"
#include "models/c5g7_model.h"
#include "perfmodel/sweep_costs.h"
#include "solver/domain_solver.h"
#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/timer.h"

using namespace antmoc;

int main(int argc, char** argv) {
  // --- Read Configuration (paper §3.1 stage 1) ----------------------------
  const Config cfg = parse_cli(argc, argv);
  telemetry::Telemetry::instance().configure(cfg);
  models::C5G7Options mopt;
  mopt.pins_per_assembly = static_cast<int>(cfg.get_int("pins", 5));
  mopt.fuel_layers = static_cast<int>(cfg.get_int("fuel_layers", 3));
  mopt.reflector_layers =
      static_cast<int>(cfg.get_int("reflector_layers", 1));
  mopt.height_scale = cfg.get_double("height_scale", 0.15);
  const std::string rodded = cfg.get_string("rodded", "none");
  if (rodded == "A") mopt.config = models::RodConfig::kRoddedA;
  if (rodded == "B") mopt.config = models::RodConfig::kRoddedB;

  const int d = static_cast<int>(cfg.get_int("domains", 2));
  const Decomposition decomp{d, d, d};

  DomainRunParams params;
  params.num_azim = static_cast<int>(cfg.get_int("track.azim", 4));
  params.azim_spacing = cfg.get_double("track.spacing", 0.5);
  params.num_polar = static_cast<int>(cfg.get_int("track.polar", 2));
  params.z_spacing = cfg.get_double("track.z_spacing", 1.0);
  params.use_device = cfg.get_bool("device", true);
  params.device_spec = gpusim::DeviceSpec::scaled(
      static_cast<std::size_t>(cfg.get_int("device.memory_mib", 1024))
          << 20,
      static_cast<int>(cfg.get_int("device.cus", 16)));
  params.gpu_options.policy = TrackPolicy::kManaged;
  params.gpu_options.resident_budget_bytes =
      static_cast<std::size_t>(params.device_spec.memory_bytes * 0.384);
  // Sweep hot-path knobs: host fork-join width and the device FSR-tally
  // strategy (auto | off | force; see DESIGN.md §7).
  params.sweep_workers =
      static_cast<unsigned>(cfg.get_int("sweep.workers", 0));
  const std::string privatize = cfg.get_string("sweep.privatize", "auto");
  params.gpu_options.privatize =
      privatize == "off"     ? PrivatizeMode::kOff
      : privatize == "force" ? PrivatizeMode::kForce
                             : PrivatizeMode::kAuto;
  // Chord-template expansion of temporary tracks (auto | off | force;
  // DESIGN.md §9) and the optional pin of the regeneration cost ratio
  // consumed by the perf model and the load mapper (0 = micro-calibrate
  // at startup).
  const std::string templates = cfg.get_string("track.templates", "auto");
  params.gpu_options.templates =
      templates == "off"     ? TemplateMode::kOff
      : templates == "force" ? TemplateMode::kForce
                             : TemplateMode::kAuto;
  const double otf_cost = cfg.get_double("track.otf_cost", 0.0);
  if (otf_cost > 0.0) perf::set_otf_cost_ratio(otf_cost);
  // Segment-store precision (exact | compact; DESIGN.md §15). Compact
  // halves the resident footprint (int32 FSR + fp32 chord) at a bounded
  // accuracy cost; exact is bitwise identical to the seed. The CLI
  // default defers to ANTMOC_TRACK_STORAGE, then exact.
  params.gpu_options.storage = parse_track_storage(cfg.get_string(
      "track.storage", track_storage_name(default_track_storage())));
  require_compact_storage_compatible(params.gpu_options.storage,
                                     params.gpu_options.templates);
  // Sweep kernel organization (history | event; DESIGN.md §13). The CLI
  // default defers to ANTMOC_SWEEP_BACKEND, then history. Both backends
  // are bitwise identical for a fixed worker count; event trades a
  // once-per-solve flatten for vectorized flat-array sweeps.
  params.gpu_options.backend = parse_sweep_backend(cfg.get_string(
      "sweep.backend", sweep_backend_name(default_sweep_backend())));
  // Overlapped interface-flux exchange (DESIGN.md §8): nonblocking
  // boundary-first exchange hidden behind the interior sweep. Results are
  // identical either way; off restores the buffered-synchronous pattern.
  params.overlap = cfg.get_bool("comm.overlap", true);
  // CMFD acceleration (DESIGN.md §14): off by default; cmfd.enable /
  // ANTMOC_CMFD turn on the pin-resolution coarse solve, cmfd.mesh
  // overrides the overlay (pin | assembly | NxMxK).
  params.cmfd = cmfd::options_from(cfg);

  // --- Geometry Construction (stage 2) ------------------------------------
  const models::C5G7Model model = models::build_core(mopt);
  log::info("C5G7 core: ", model.geometry.num_fsrs(), " FSRs, ",
            decomp.num_domains(), " sub-geometries, rodded=", rodded);

  // --- Track generation, ray tracing, transport solve (stages 3-4) --------
  SolveOptions opts;
  opts.tolerance = cfg.get_double("tolerance", 1e-5);
  opts.max_iterations =
      static_cast<int>(cfg.get_int("max_iterations", 20000));

  // --- Scenario-engine batch service (--serve; DESIGN.md §12) -------------
  // One warmed Session serves a batch of scenario jobs from the shared
  // caches instead of paying a full laydown per case.
  if (cfg.get_bool("serve", false)) {
    engine::SessionOptions sopts;
    sopts.num_devices = static_cast<int>(cfg.get_int("engine.devices", 2));
    sopts.max_concurrent =
        static_cast<int>(cfg.get_int("engine.max_concurrent", 0));
    sopts.device = params.device_spec;
    sopts.num_azim = params.num_azim;
    sopts.azim_spacing = params.azim_spacing;
    sopts.num_polar = params.num_polar;
    sopts.z_spacing = params.z_spacing;
    sopts.gpu = params.gpu_options;
    sopts.cmfd = params.cmfd;
    sopts.solve = opts;
    sopts.solve.fixed_iterations =
        static_cast<int>(cfg.get_int("engine.fixed_iterations", 0));
    sopts.sweep_workers =
        params.sweep_workers == 0 ? 2 : params.sweep_workers;

    // The batch: a scenario file when given, else the built-in screening
    // ladder (base case, rodded core, reactivity bump, hot branch, and a
    // three-step depletion chain).
    std::vector<engine::Scenario> ladder;
    const std::string scenario_file = cfg.get_string("engine.scenarios", "");
    if (!scenario_file.empty()) {
      ladder = engine::load_scenarios(scenario_file);
    } else {
      engine::Scenario base;
      base.name = "base";
      ladder.push_back(base);
      engine::Scenario rod;
      rod.name = "rodded";
      engine::MaterialOp swap;
      swap.kind = engine::MaterialOp::Kind::kSwap;
      swap.material = 6;
      swap.source = 7;
      rod.ops.push_back(swap);
      ladder.push_back(rod);
      engine::Scenario up;
      up.name = "nu+2pct";
      engine::MaterialOp scale;
      scale.kind = engine::MaterialOp::Kind::kScale;
      scale.material = 0;
      scale.xs = engine::MaterialOp::Xs::kNuFission;
      scale.factor = 1.02;
      up.ops.push_back(scale);
      ladder.push_back(up);
      engine::Scenario hot;
      hot.name = "hot+300K";
      engine::MaterialOp temp;
      temp.kind = engine::MaterialOp::Kind::kTemperature;
      temp.delta_t = 300.0;
      hot.ops.push_back(temp);
      ladder.push_back(hot);
      engine::Scenario deplete;
      deplete.name = "deplete";
      deplete.steps = 3;
      deplete.burn = 0.98;
      ladder.push_back(deplete);
    }
    const long want =
        cfg.get_int("engine.jobs", static_cast<long>(ladder.size()));
    std::vector<engine::Scenario> jobs;
    for (long j = 0; j < want; ++j)
      jobs.push_back(ladder[static_cast<std::size_t>(j) % ladder.size()]);

    Timer warmup;
    warmup.start();
    engine::Session session(model, sopts);
    warmup.stop();
    log::info("engine session warm in ", warmup.seconds(), " s (",
              sopts.num_devices, " devices, job floor ",
              session.job_floor_bytes() >> 20, " MiB)");

    Timer batch;
    batch.start();
    const std::vector<engine::JobResult> results = session.run(jobs);
    batch.stop();

    std::printf("%-12s %-4s %10s %6s %9s %9s %7s\n", "scenario", "ok",
                "k_eff", "iters", "solve[s]", "queue[s]", "device");
    long failed = 0;
    for (const engine::JobResult& r : results) {
      if (!r.ok) ++failed;
      std::printf("%-12s %-4s %10.6f %6d %9.4f %9.4f %7d\n",
                  r.scenario.c_str(), r.ok ? "yes" : "NO",
                  r.k_eff, r.iterations, r.solve_seconds, r.queue_seconds,
                  r.device);
      if (!r.ok) std::printf("  error: %s\n", r.error.c_str());
    }
    const engine::SessionStats stats = session.stats();
    std::printf(
        "%zu jobs in %.2f s (%.2f jobs/s), peak %d concurrent, "
        "%ld deferrals, %ld failed\n",
        results.size(), batch.seconds(),
        static_cast<double>(results.size()) / batch.seconds(),
        stats.peak_concurrent, stats.deferrals, failed);
    if (telemetry::on())
      std::printf("\n--- run log: telemetry summary ---\n%s",
                  telemetry::summary().c_str());
    return failed == 0 ? 0 : 1;
  }

  Timer wall;
  wall.start();
  const DomainRunSummary run = solve_decomposed(
      model.geometry, model.materials, decomp, params, opts);
  wall.stop();

  std::printf(
      "k_eff = %.6f (%d iterations, converged: %s) in %.2f s\n"
      "3D tracks: %ld, 3D segments: %ld, interface flux: %llu B/iter, "
      "domain load uniformity: %.3f, comm overlap ratio: %.3f\n",
      run.result.k_eff, run.result.iterations,
      run.result.converged ? "yes" : "no", wall.seconds(),
      run.total_tracks_3d, run.total_segments_3d,
      static_cast<unsigned long long>(run.flux_bytes_per_iter),
      run.domain_load_uniformity, run.comm_overlap_ratio);

  // --- Output Generation (stage 5; the Fig. 7 visualization data) ---------
  const std::string out = cfg.get_string("out", ".");
  const Geometry& g = model.geometry;

  // FSR volumes for the writers, from a quick host laydown.
  std::vector<double> volumes(g.num_fsrs(), 0.0);
  {
    const Quadrature quad(params.num_azim, params.azim_spacing,
                          g.bounds().width_x(), g.bounds().width_y(),
                          params.num_polar);
    TrackGenerator2D gen(quad, g.bounds(),
                         {LinkKind::kReflective, LinkKind::kVacuum,
                          LinkKind::kReflective, LinkKind::kVacuum});
    gen.trace(g);
    const TrackStacks stacks(gen, g, g.bounds().z_min, g.bounds().z_max,
                             params.z_spacing);
    constexpr double k4Pi = 4.0 * 3.14159265358979323846;
    for (long id = 0; id < stacks.num_tracks(); ++id) {
      const double w = 2.0 * stacks.direction_weight(id) / k4Pi *
                       stacks.track_area(id);
      stacks.for_each_segment(id, true, [&](long fsr, double len) {
        volumes[fsr] += w * len;
      });
    }
  }

  io::write_fission_rate_csv(out + "/c5g7_fission_rate.csv", g,
                             run.fission_rate, volumes);

  const int pins = 3 * mopt.pins_per_assembly;
  const auto power =
      models::pin_powers(g, run.fission_rate, volumes, pins, pins);
  io::write_pin_power_csv(out + "/c5g7_pin_power.csv", power, pins, pins);

  // Radial pin-power map replicated per axial layer -> a coarse volume
  // ParaView renders like the paper's Fig. 7.
  std::vector<double> volume_data;
  volume_data.reserve(static_cast<std::size_t>(pins) * pins *
                      g.num_axial_layers());
  for (int l = 0; l < g.num_axial_layers(); ++l)
    for (int j = 0; j < pins; ++j)
      for (int i = 0; i < pins; ++i) {
        const Point2 center{g.bounds().x_min +
                                (i + 0.5) * g.bounds().width_x() / pins,
                            g.bounds().y_min +
                                (j + 0.5) * g.bounds().width_y() / pins};
        const int region = g.find_radial(center).region;
        volume_data.push_back(run.fission_rate[g.fsr_id(region, l)]);
      }
  io::write_vtk_volume(out + "/c5g7_fission_rate.vtk", "fission_rate",
                       pins, pins, g.num_axial_layers(), 1.26, 1.26,
                       g.bounds().width_z() / g.num_axial_layers(),
                       volume_data);

  std::printf("wrote %s/c5g7_fission_rate.csv, c5g7_pin_power.csv, "
              "c5g7_fission_rate.vtk\n",
              out.c_str());

  // Run log. With telemetry on, the unified summary subsumes the plain
  // stage-timer table and the trace/metrics files are written alongside.
  if (telemetry::on()) {
    std::printf("\n--- run log: telemetry summary ---\n%s",
                telemetry::summary().c_str());
    if (telemetry::export_all()) {
      const auto tcfg = telemetry::Telemetry::instance().config();
      std::printf("wrote %s (chrome://tracing) and %s\n",
                  tcfg.trace_path.c_str(), tcfg.metrics_path.c_str());
    }
  } else {
    std::printf("\n--- run log: stage timings ---\n%s",
                TimerRegistry::instance().report().c_str());
  }
  return run.result.converged ? 0 : 1;
}
